//! Criterion microbench for the distributed mode's transport overhead:
//! the same JSON-RPC call dispatched in-process (thread-local wire
//! buffers, no sockets) vs. over loopback TCP with length-prefixed
//! framing — the exact path a multi-process deployment's driver pays per
//! submission.
//!
//! Both sides execute the identical dispatch and codec code
//! (`RpcServer::handle_bytes_into`); the delta is pure transport: frame
//! header, syscalls, and the kernel loopback round trip.
//!
//! `scripts/bench_snapshot.sh` runs this group with `CRITERION_JSON` set
//! and snapshots the overhead ratio to `BENCH_rpc_loopback.json`.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use hammer_chain::codec;
use hammer_chain::rpc_adapter::serve_tcp;
use hammer_chain::smallbank::Op;
use hammer_chain::types::Transaction;
use hammer_crypto::sig::SigParams;
use hammer_crypto::Keypair;
use hammer_net::{ReconnectPolicy, TcpClientConfig, TcpRpcClient, TcpServerConfig};
use hammer_rpc::json::Value;
use hammer_rpc::transport::RpcServer;

/// A dispatch table with one echo method, fed a submission-shaped
/// payload: an encoded signed SmallBank transaction, the dominant frame
/// the driver sends in a real run.
fn echo_server() -> RpcServer {
    let server = RpcServer::new("bench");
    server.register("echo", Ok);
    server
}

fn submission_payload() -> Value {
    let tx = Transaction {
        client_id: 3,
        server_id: 0,
        nonce: 42,
        op: Op::KvPut { key: 7, value: 49 },
        chain_name: "bench".to_owned(),
        contract_name: "smallbank".to_owned(),
    }
    .sign(&Keypair::from_seed(1), &SigParams::fast());
    codec::encode_signed_tx(&tx)
}

/// In-process dispatch vs. loopback TCP, same method, same payload.
fn bench_rpc_loopback(c: &mut Criterion) {
    let mut group = c.benchmark_group("rpc_loopback");
    group.throughput(Throughput::Elements(1));
    let payload = submission_payload();

    {
        let client = echo_server().client();
        group.bench_function("inproc_call", |b| {
            b.iter(|| client.call("echo", payload.clone()).expect("echo succeeds"));
        });
    }

    {
        let server = serve_tcp(echo_server(), "127.0.0.1:0", TcpServerConfig::default())
            .expect("loopback bind");
        let client = TcpRpcClient::new(
            server.local_addr(),
            TcpClientConfig::default(),
            ReconnectPolicy::none(),
        );
        group.bench_function("tcp_loopback_call", |b| {
            b.iter(|| {
                client
                    .call("echo", payload.clone())
                    .expect("transport up")
                    .expect("echo succeeds")
            });
        });
        server.shutdown_and_join();
    }
    group.finish();
}

criterion_group!(benches, bench_rpc_loopback);
criterion_main!(benches);
