//! Criterion microbench behind Fig. 8: signing strategies.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hammer_chain::types::Transaction;
use hammer_core::signer::{sign_async, sign_pipelined, sign_serial};
use hammer_crypto::sig::SigParams;
use hammer_crypto::Keypair;
use hammer_workload::{SmallBankGenerator, WorkloadConfig};

fn batch(n: usize) -> Vec<Transaction> {
    SmallBankGenerator::new(WorkloadConfig {
        accounts: 500,
        total_txs: n,
        ..WorkloadConfig::default()
    })
    .generate_all()
}

fn bench_signing(c: &mut Criterion) {
    let mut group = c.benchmark_group("signing");
    group.sample_size(10);
    let n = 5_000usize;
    let txs = batch(n);
    let keypair = Keypair::from_seed(1);
    let params = SigParams::realistic();
    let threads = std::thread::available_parallelism()
        .map(|v| v.get())
        .unwrap_or(8);
    group.throughput(Throughput::Elements(n as u64));

    group.bench_function(BenchmarkId::new("serial", n), |b| {
        b.iter(|| sign_serial(txs.clone(), &keypair, &params).len());
    });

    group.bench_function(BenchmarkId::new("async_pool", n), |b| {
        b.iter(|| sign_async(txs.clone(), &keypair, &params, threads).len());
    });

    group.bench_function(BenchmarkId::new("pipelined_consume", n), |b| {
        b.iter(|| {
            let rx = sign_pipelined(txs.clone(), keypair, params, threads);
            rx.iter().count()
        });
    });

    group.finish();
}

fn bench_single_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("signature_ops");
    let keypair = Keypair::from_seed(1);
    for (label, params) in [
        ("fast", SigParams::fast()),
        ("realistic", SigParams::realistic()),
    ] {
        let sig = keypair.sign(b"message", &params);
        group.bench_function(BenchmarkId::new("sign", label), |b| {
            b.iter(|| keypair.sign(b"message", &params));
        });
        group.bench_function(BenchmarkId::new("verify", label), |b| {
            b.iter(|| keypair.public().verify(b"message", &sig, &params));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_signing, bench_single_ops);
criterion_main!(benches);
