//! Criterion microbenches for the substrate primitives: SHA-256, Merkle
//! roots, Bloom filter, JSON codec — the per-transaction costs everything
//! else is built from.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hammer_core::bloom::BloomFilter;
use hammer_crypto::{merkle::merkle_root, sha256};
use hammer_rpc::json::Value;

fn bench_sha256(c: &mut Criterion) {
    let mut group = c.benchmark_group("sha256");
    for &size in &[64usize, 1024, 65_536] {
        let data = vec![0xabu8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, _| {
            b.iter(|| sha256(&data));
        });
    }
    group.finish();
}

fn bench_merkle(c: &mut Criterion) {
    let mut group = c.benchmark_group("merkle_root");
    group.sample_size(20);
    for &n in &[100usize, 1_000, 10_000] {
        let items: Vec<Vec<u8>> = (0..n).map(|i| format!("tx-{i}").into_bytes()).collect();
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| merkle_root(&items));
        });
    }
    group.finish();
}

fn bench_bloom(c: &mut Criterion) {
    let mut group = c.benchmark_group("bloom");
    let mut bloom = BloomFilter::new(100_000, 0.01);
    for i in 0..100_000u64 {
        bloom.insert(i);
    }
    group.throughput(Throughput::Elements(1));
    group.bench_function("contains_hit", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % 100_000;
            bloom.contains(i)
        });
    });
    group.bench_function("contains_miss", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            bloom.contains(1_000_000 + i)
        });
    });
    group.finish();
}

fn bench_json(c: &mut Criterion) {
    let mut group = c.benchmark_group("json");
    let value = Value::object([
        ("jsonrpc", Value::from("2.0")),
        ("id", Value::from(42)),
        ("method", Value::from("submit_transaction")),
        (
            "params",
            Value::object([
                ("type", Value::from("transfer")),
                ("from", Value::from("12345678901234567890")),
                ("to", Value::from("98765432109876543210")),
                ("amount", Value::from(100)),
                ("sig", Value::from("00112233445566778899aabbccddeeff")),
            ]),
        ),
    ]);
    let text = value.to_json();
    group.throughput(Throughput::Bytes(text.len() as u64));
    group.bench_function("serialize_rpc_request", |b| {
        b.iter(|| value.to_json());
    });
    group.bench_function("parse_rpc_request", |b| {
        b.iter(|| Value::parse(&text).unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench_sha256, bench_merkle, bench_bloom, bench_json);
criterion_main!(benches);
