//! Criterion microbench for the observability layer: what one metric
//! event costs when enabled, and — the number the driver cares about —
//! that a *disabled* registry costs nearly nothing on the signing hot
//! path (the `sign_obs_disabled`/`sign_plain` pair must stay within
//! noise; `scripts/bench_snapshot.sh` gates the ratio).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use hammer_chain::types::Transaction;
use hammer_core::signer::{sign_serial, sign_serial_obs, SignObs};
use hammer_crypto::sig::SigParams;
use hammer_crypto::Keypair;
use hammer_net::SimClock;
use hammer_obs::{Histogram, Journal, Obs, Registry, Stage};
use hammer_workload::{SmallBankGenerator, WorkloadConfig};

fn batch(n: usize) -> Vec<Transaction> {
    SmallBankGenerator::new(WorkloadConfig {
        accounts: 500,
        total_txs: n,
        ..WorkloadConfig::default()
    })
    .generate_all()
}

fn bench_primitives(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_overhead");

    let hist = Histogram::new();
    let mut v = 1u64;
    group.bench_function("histogram_record", |b| {
        b.iter(|| {
            // A cheap xorshift keeps the bucket index unpredictable so the
            // measurement is not one perfectly-predicted branch chain.
            v ^= v << 13;
            v ^= v >> 7;
            v ^= v << 17;
            hist.record(v >> 32);
        });
    });

    let off = Histogram::disabled();
    group.bench_function("histogram_record_disabled", |b| {
        b.iter(|| {
            v ^= v << 13;
            v ^= v >> 7;
            v ^= v << 17;
            off.record(v >> 32);
        });
    });

    let mut filler = 1u64;
    let left = Histogram::new();
    let right = Histogram::new();
    for _ in 0..10_000 {
        filler ^= filler << 13;
        filler ^= filler >> 7;
        filler ^= filler << 17;
        left.record(filler >> 30);
        right.record(filler >> 34);
    }
    group.bench_function("histogram_merge", |b| {
        b.iter(|| left.merge(&right));
    });

    let registry = Registry::new();
    let counter = registry.counter("bench_counter");
    group.bench_function("counter_inc", |b| {
        b.iter(|| counter.inc());
    });

    let obs = Obs::new();
    let d = std::time::Duration::from_micros(37);
    group.bench_function("span_record", |b| {
        b.iter(|| obs.spans().record(Stage::Submitted, d));
    });

    let journal = Journal::new();
    let at = std::time::Duration::from_secs(1);
    group.bench_function("journal_push", |b| {
        b.iter(|| journal.block_seal(at, "bench-node", 7, 100));
    });

    group.finish();
}

fn bench_signing_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_signing");
    let n = 32usize;
    let txs = batch(n);
    let keypair = Keypair::from_seed(1);
    let params = SigParams::fast();
    group.throughput(Throughput::Elements(n as u64));

    group.bench_function("sign_plain", |b| {
        b.iter_batched(
            || txs.clone(),
            |txs| sign_serial(txs, &keypair, &params).len(),
            BatchSize::SmallInput,
        );
    });

    let disabled = SignObs::disabled();
    group.bench_function("sign_obs_disabled", |b| {
        b.iter_batched(
            || txs.clone(),
            |txs| sign_serial_obs(txs, &keypair, &params, &disabled).len(),
            BatchSize::SmallInput,
        );
    });

    let obs = Obs::new();
    let clock = SimClock::realtime();
    let enabled = SignObs::new(&obs, &clock);
    group.bench_function("sign_obs_enabled", |b| {
        b.iter_batched(
            || txs.clone(),
            |txs| sign_serial_obs(txs, &keypair, &params, &enabled).len(),
            BatchSize::SmallInput,
        );
    });

    group.finish();
}

criterion_group!(benches, bench_primitives, bench_signing_overhead);
criterion_main!(benches);
