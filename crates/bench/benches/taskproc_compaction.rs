//! Ablation bench for the paper's stated limitation: the dynamic hash
//! table only grows, inflating storage on long runs. DESIGN.md §6 adds
//! periodic compaction ([`TxTable::compact`]); this bench measures its
//! cost and its effect on matching speed and storage, so the
//! compact-vs-grow trade-off is quantified rather than asserted.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hammer_chain::smallbank::Op;
use hammer_chain::types::{Transaction, TxId};
use hammer_core::index::TxTable;

fn tx_ids(n: usize) -> Vec<TxId> {
    (0..n as u64)
        .map(|nonce| {
            Transaction {
                client_id: 0,
                server_id: 0,
                nonce,
                op: Op::KvGet { key: nonce },
                chain_name: "bench".to_owned(),
                contract_name: "kv".to_owned(),
            }
            .id()
        })
        .collect()
}

/// Builds a long-run table: `n` transactions inserted, 90% completed.
fn long_run_table(ids: &[TxId]) -> TxTable {
    let mut table = TxTable::with_capacity(1024);
    for id in ids {
        table.insert(*id, 0, 0, Duration::ZERO);
    }
    for id in ids.iter().take(ids.len() * 9 / 10) {
        table.complete(id, Duration::from_secs(1), true);
    }
    table
}

fn bench_compaction(c: &mut Criterion) {
    let mut group = c.benchmark_group("compaction");
    group.sample_size(10);

    for &n in &[20_000usize, 100_000] {
        let ids = tx_ids(n);

        group.bench_with_input(BenchmarkId::new("compact_cost", n), &n, |b, _| {
            b.iter_batched(
                || long_run_table(&ids),
                |mut table| table.compact(),
                criterion::BatchSize::LargeInput,
            );
        });

        // Matching the remaining pending tail: compacted vs grown table.
        let pending: Vec<TxId> = ids[n * 9 / 10..].to_vec();
        group.bench_with_input(BenchmarkId::new("match_after_growth", n), &n, |b, _| {
            b.iter_batched(
                || long_run_table(&ids),
                |mut table| {
                    for id in &pending {
                        table.complete(id, Duration::from_secs(2), true);
                    }
                    table.slot_count()
                },
                criterion::BatchSize::LargeInput,
            );
        });
        group.bench_with_input(BenchmarkId::new("match_after_compact", n), &n, |b, _| {
            b.iter_batched(
                || {
                    let mut table = long_run_table(&ids);
                    table.compact();
                    table
                },
                |mut table| {
                    for id in &pending {
                        table.complete(id, Duration::from_secs(2), true);
                    }
                    table.slot_count()
                },
                criterion::BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

criterion_group!(benches, bench_compaction);
criterion_main!(benches);
