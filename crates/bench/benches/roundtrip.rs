//! Criterion microbench for the transaction hot path: sign → encode →
//! decode → verify, plus the primitive pairs the speedups come from —
//! windowed fixed-base modexp vs. generic square-and-multiply, batch vs.
//! per-signature verification, and buffer-reusing vs. allocating codecs.
//!
//! `scripts/bench_snapshot.sh` runs this group with `CRITERION_JSON` set
//! and checks the fixed-base speedup against its ≥3× floor.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use hammer_chain::codec;
use hammer_chain::smallbank::Op;
use hammer_chain::types::{verify_signed_batch, SignedTransaction, Transaction};
use hammer_crypto::sig::{pow_g, pow_mod, SigParams, G, GROUP_ORDER};
use hammer_crypto::Keypair;
use hammer_rpc::json::Value;
use hammer_rpc::transport::RpcServer;

fn sample_tx(nonce: u64) -> Transaction {
    Transaction {
        client_id: (nonce % 16) as u32,
        server_id: 0,
        nonce,
        op: Op::KvPut {
            key: nonce,
            value: nonce * 7,
        },
        chain_name: "bench".to_owned(),
        contract_name: "smallbank".to_owned(),
    }
}

fn signed_burst(n: u64, keypair: &Keypair, params: &SigParams) -> Vec<SignedTransaction> {
    let mut buf = Vec::with_capacity(64);
    (0..n)
        .map(|i| sample_tx(i).sign_with_buf(keypair, params, &mut buf))
        .collect()
}

/// Fixed-base vs. generic modexp — the primitive behind the signing
/// speedup. Both sides run the same exponent set.
fn bench_modexp(c: &mut Criterion) {
    let mut group = c.benchmark_group("roundtrip");
    let exps: Vec<u64> = (1..=64u64)
        .map(|i| i.wrapping_mul(0x9e37_79b9_7f4a_7c15) % GROUP_ORDER)
        .collect();
    group.throughput(Throughput::Elements(exps.len() as u64));
    group.bench_function("modexp_generic", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &e in &exps {
                acc ^= pow_mod(G, black_box(e));
            }
            acc
        });
    });
    group.bench_function("modexp_fixed_base", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &e in &exps {
                acc ^= pow_g(black_box(e));
            }
            acc
        });
    });
    group.finish();
}

/// The four stages of the transaction round trip, each on the
/// buffer-reusing hot path, with the allocating encode kept as the
/// before-side comparison.
fn bench_stages(c: &mut Criterion) {
    let mut group = c.benchmark_group("roundtrip");
    let params = SigParams::fast();
    let keypair = Keypair::from_seed(1);
    let tx = sample_tx(42);
    let signed = {
        let mut buf = Vec::with_capacity(64);
        tx.clone().sign_with_buf(&keypair, &params, &mut buf)
    };
    let mut wire = String::new();
    codec::encode_signed_tx_into(&signed, &mut wire);

    group.bench_function("sign", |b| {
        let mut buf = Vec::with_capacity(64);
        b.iter(|| tx.clone().sign_with_buf(&keypair, &params, &mut buf));
    });
    group.bench_function("encode", |b| {
        let mut out = String::with_capacity(wire.len());
        b.iter(|| {
            out.clear();
            codec::encode_signed_tx_into(&signed, &mut out);
            out.len()
        });
    });
    group.bench_function("encode_alloc", |b| {
        b.iter(|| codec::encode_signed_tx(&signed).to_json().len());
    });
    group.bench_function("decode", |b| {
        b.iter(|| codec::decode_signed_tx_bytes(wire.as_bytes()).expect("valid wire text"));
    });
    group.bench_function("verify", |b| {
        b.iter(|| signed.verify(&params));
    });
    group.finish();
}

/// Batch vs. per-signature verification on a block-sized burst under one
/// key — the shape the chain simulators hand to `verify_signed_batch`.
fn bench_verify_burst(c: &mut Criterion) {
    let mut group = c.benchmark_group("roundtrip");
    let params = SigParams::fast();
    let keypair = Keypair::from_seed(1);
    let n = 64u64;
    let burst = signed_burst(n, &keypair, &params);
    group.throughput(Throughput::Elements(n));
    group.bench_function("verify_each64", |b| {
        b.iter(|| burst.iter().filter(|tx| tx.verify(&params)).count());
    });
    group.bench_function("verify_batch64", |b| {
        b.iter(|| {
            verify_signed_batch(&burst, &params)
                .into_iter()
                .filter(|ok| *ok)
                .count()
        });
    });
    group.finish();
}

/// A full JSON-RPC call through the thread-local wire buffers.
fn bench_rpc_call(c: &mut Criterion) {
    let mut group = c.benchmark_group("roundtrip");
    let server = RpcServer::new("bench");
    server.register("echo", Ok);
    let client = server.client();
    group.bench_function("rpc_call", |b| {
        b.iter(|| {
            client
                .call("echo", Value::from(12345))
                .expect("echo succeeds")
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_modexp,
    bench_stages,
    bench_verify_burst,
    bench_rpc_call
);
criterion_main!(benches);
