//! Criterion microbench behind Fig. 9: block matching against a large
//! in-flight set, Hammer task processing vs the batch-testing baseline.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hammer_chain::smallbank::Op;
use hammer_chain::types::{Transaction, TxId};
use hammer_core::baseline::BatchQueue;
use hammer_core::index::TxTable;

fn tx_ids(n: usize) -> Vec<TxId> {
    (0..n as u64)
        .map(|nonce| {
            Transaction {
                client_id: 0,
                server_id: 0,
                nonce,
                op: Op::KvGet { key: nonce },
                chain_name: "bench".to_owned(),
                contract_name: "kv".to_owned(),
            }
            .id()
        })
        .collect()
}

fn bench_matching(c: &mut Criterion) {
    let mut group = c.benchmark_group("block_matching");
    group.sample_size(10);
    let block_m = 1_000usize;

    for &n in &[10_000usize, 50_000, 100_000] {
        let ids = tx_ids(n);
        let block: Vec<TxId> = ids[n - block_m..].to_vec();
        group.throughput(Throughput::Elements(block_m as u64));

        group.bench_with_input(BenchmarkId::new("batch_baseline", n), &n, |b, _| {
            b.iter_batched(
                || {
                    let mut queue = BatchQueue::new();
                    for id in &ids {
                        queue.insert(*id, 0, 0, Duration::ZERO);
                    }
                    queue
                },
                |mut queue| queue.complete_block(&block, Duration::from_secs(1)),
                criterion::BatchSize::LargeInput,
            );
        });

        group.bench_with_input(BenchmarkId::new("hammer_taskproc", n), &n, |b, _| {
            b.iter_batched(
                || {
                    let mut table = TxTable::with_capacity(n);
                    for id in &ids {
                        table.insert(*id, 0, 0, Duration::ZERO);
                    }
                    table
                },
                |mut table| {
                    let mut matched = 0;
                    for id in &block {
                        if table.complete(id, Duration::from_secs(1), true) {
                            matched += 1;
                        }
                    }
                    matched
                },
                criterion::BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

fn bench_insert(c: &mut Criterion) {
    let mut group = c.benchmark_group("tracking_insert");
    group.sample_size(10);
    let ids = tx_ids(50_000);
    group.throughput(Throughput::Elements(ids.len() as u64));

    group.bench_function("txtable_insert_50k", |b| {
        b.iter(|| {
            let mut table = TxTable::with_capacity(1024); // force growth
            for id in &ids {
                table.insert(*id, 0, 0, Duration::ZERO);
            }
            table.len()
        });
    });

    group.bench_function("batchqueue_insert_50k", |b| {
        b.iter(|| {
            let mut queue = BatchQueue::new();
            for id in &ids {
                queue.insert(*id, 0, 0, Duration::ZERO);
            }
            queue.pending()
        });
    });
    group.finish();
}

criterion_group!(benches, bench_matching, bench_insert);
criterion_main!(benches);
