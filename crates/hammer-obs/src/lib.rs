//! Observability layer for the Hammer framework.
//!
//! The paper's visualisation phase (§III-B3) scrapes per-node metrics
//! into Prometheus and renders dashboards in Grafana. This crate is
//! the in-process stand-in for that stack:
//!
//! * [`metrics`] — a unified [`Registry`] of atomic counters, gauges,
//!   and lock-free log-bucketed latency [`Histogram`]s (mergeable,
//!   p50/p95/p99/max).
//! * [`span`] — transaction-lifecycle stage histograms
//!   (generated → signed → submitted → retried → in-block → matched →
//!   recorded), all on simulation time.
//! * [`journal`] — a bounded ring buffer of discrete run events
//!   (fault transitions, backpressure, retry exhaustion, block seals)
//!   with a JSONL sink.
//! * [`expo`] — Prometheus text-format exposition plus a parser.
//! * [`dash`] — an ASCII dashboard (TPS sparkline, latency quantile
//!   table, resource rows, journal tail).
//!
//! The whole layer hangs together in an [`Obs`] bundle that the
//! network substrate carries (`SimNetwork::install_obs`), so every
//! component — driver, signer pool, chain sims, resource monitor —
//! reaches the same registry without plumbing changes. A disabled
//! bundle (the default) turns every record into one predictable
//! branch, keeping instrumentation near-zero-cost when off.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dash;
pub mod expo;
pub mod journal;
pub mod metrics;
pub mod span;

pub use dash::{render_dashboard, sparkline};
pub use expo::{parse as parse_prometheus, render as render_prometheus, Sample};
pub use journal::{EventKind, Journal, JournalEvent, DEFAULT_JOURNAL_CAPACITY};
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, Registry};
pub use span::{LifecycleSpans, Stage, SPAN_METRIC};

/// The observability bundle: one registry, one journal, one set of
/// lifecycle spans. Cloning shares all underlying state (handles are
/// `Arc`-backed), so a bundle can be installed once on the network and
/// fetched from any component.
#[derive(Clone)]
pub struct Obs {
    registry: Registry,
    journal: Journal,
    spans: LifecycleSpans,
}

impl Obs {
    /// Live bundle with the default journal capacity.
    pub fn new() -> Self {
        Obs::with_journal_capacity(DEFAULT_JOURNAL_CAPACITY)
    }

    /// Live bundle with an explicit journal ring capacity.
    pub fn with_journal_capacity(capacity: usize) -> Self {
        let registry = Registry::new();
        let spans = LifecycleSpans::new(&registry);
        Obs {
            registry,
            journal: Journal::with_capacity(capacity),
            spans,
        }
    }

    /// Disabled bundle: every record, push, and span is a no-op and
    /// the exposition renders empty.
    pub fn disabled() -> Self {
        Obs {
            registry: Registry::disabled(),
            journal: Journal::disabled(),
            spans: LifecycleSpans::disabled(),
        }
    }

    /// Whether this bundle records anything. Hot paths gate timestamp
    /// capture on this.
    pub fn enabled(&self) -> bool {
        self.registry.is_enabled()
    }

    /// The metric registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The event journal.
    pub fn journal(&self) -> &Journal {
        &self.journal
    }

    /// The transaction-lifecycle span histograms.
    pub fn spans(&self) -> &LifecycleSpans {
        &self.spans
    }

    /// Render the registry in Prometheus text format.
    pub fn render_prometheus(&self) -> String {
        expo::render(&self.registry)
    }
}

impl Default for Obs {
    fn default() -> Self {
        Obs::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn bundle_shares_state_across_clones() {
        let obs = Obs::new();
        let other = obs.clone();
        other.registry().counter("c").inc();
        other
            .spans()
            .record(Stage::Signed, Duration::from_micros(1));
        other.journal().block_seal(Duration::ZERO, "n", 1, 1);
        assert_eq!(obs.registry().counter("c").value(), 1);
        assert_eq!(obs.spans().histogram(Stage::Signed).count(), 1);
        assert_eq!(obs.journal().len(), 1);
        assert!(obs.enabled());
    }

    #[test]
    fn disabled_bundle_is_fully_inert() {
        let obs = Obs::disabled();
        obs.registry().counter("c").inc();
        obs.spans().record(Stage::Signed, Duration::from_micros(1));
        obs.journal().block_seal(Duration::ZERO, "n", 1, 1);
        assert!(!obs.enabled());
        assert!(obs.render_prometheus().is_empty());
        assert!(obs.journal().is_empty());
    }
}
