//! Transaction-lifecycle spans.
//!
//! A transaction moves through a fixed pipeline:
//!
//! ```text
//! generated → signed → submitted → retried{n} → in-block → matched → recorded
//! ```
//!
//! Rather than keeping one allocation per in-flight transaction, the
//! driver records a **duration sample per stage transition** into a
//! per-stage histogram. Stage semantics (what interval each sample
//! covers) are documented on [`Stage`] and in DESIGN.md §9. All
//! timestamps come from the simulation clock, so samples are
//! comparable across speedups.

use std::time::Duration;

use crate::metrics::{Histogram, HistogramSnapshot, Registry};

/// Pipeline stage of a transaction's life. Each stage has a duration
/// histogram measuring the interval that *ends* at that stage.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Workload generation cost per transaction (amortised over the
    /// generated batch).
    Generated,
    /// Per-transaction signing duration inside the signer pool.
    Signed,
    /// Worker pull → chain acceptance (includes retry backoff when the
    /// first attempt is rejected).
    Submitted,
    /// One sample per retry backoff pause actually slept.
    Retried,
    /// Submission start → block-inclusion timestamp (commit latency).
    InBlock,
    /// Block-inclusion timestamp → the moment the async matcher
    /// observed the commit (the paper's task-processing lag ξ).
    Matched,
    /// Block-inclusion timestamp → status record published to the
    /// live-sync pipeline. Only measured when live sync is on.
    Recorded,
}

impl Stage {
    /// All stages in pipeline order.
    pub const ALL: [Stage; 7] = [
        Stage::Generated,
        Stage::Signed,
        Stage::Submitted,
        Stage::Retried,
        Stage::InBlock,
        Stage::Matched,
        Stage::Recorded,
    ];

    /// Stable lowercase label used in metric names.
    pub fn as_str(self) -> &'static str {
        match self {
            Stage::Generated => "generated",
            Stage::Signed => "signed",
            Stage::Submitted => "submitted",
            Stage::Retried => "retried",
            Stage::InBlock => "in_block",
            Stage::Matched => "matched",
            Stage::Recorded => "recorded",
        }
    }

    fn index(self) -> usize {
        match self {
            Stage::Generated => 0,
            Stage::Signed => 1,
            Stage::Submitted => 2,
            Stage::Retried => 3,
            Stage::InBlock => 4,
            Stage::Matched => 5,
            Stage::Recorded => 6,
        }
    }
}

/// Base metric name of the per-stage duration histograms; the stage is
/// attached as a `stage` label.
pub const SPAN_METRIC: &str = "hammer_span_stage_ns";

/// Bundle of per-stage duration histograms registered on a
/// [`Registry`]. Cloning shares the underlying histograms.
#[derive(Clone)]
pub struct LifecycleSpans {
    stages: [Histogram; 7],
    enabled: bool,
}

impl LifecycleSpans {
    /// Register one histogram per stage on `registry` (disabled
    /// registries yield disabled spans).
    pub fn new(registry: &Registry) -> Self {
        let stages =
            Stage::ALL.map(|s| registry.histogram_with(SPAN_METRIC, &[("stage", s.as_str())]));
        LifecycleSpans {
            enabled: registry.is_enabled(),
            stages,
        }
    }

    /// Disabled spans: every record is a no-op.
    pub fn disabled() -> Self {
        LifecycleSpans::new(&Registry::disabled())
    }

    /// Whether records take effect. Callers on hot paths should gate
    /// timestamp capture on this to avoid paying for `clock.now()`.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Record a duration sample for `stage`.
    #[inline]
    pub fn record(&self, stage: Stage, d: Duration) {
        self.stages[stage.index()].record_duration(d);
    }

    /// Histogram handle for one stage.
    pub fn histogram(&self, stage: Stage) -> &Histogram {
        &self.stages[stage.index()]
    }

    /// Snapshot of one stage's histogram.
    pub fn snapshot(&self, stage: Stage) -> HistogramSnapshot {
        self.stages[stage.index()].snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stages_record_into_distinct_histograms() {
        let reg = Registry::new();
        let spans = LifecycleSpans::new(&reg);
        spans.record(Stage::Signed, Duration::from_micros(5));
        spans.record(Stage::Signed, Duration::from_micros(7));
        spans.record(Stage::InBlock, Duration::from_millis(40));
        assert_eq!(spans.histogram(Stage::Signed).count(), 2);
        assert_eq!(spans.histogram(Stage::InBlock).count(), 1);
        assert_eq!(spans.histogram(Stage::Matched).count(), 0);
        // Registered under the labelled metric name.
        let names: Vec<String> = reg.histograms().into_iter().map(|(n, _)| n).collect();
        assert!(names.contains(&format!("{SPAN_METRIC}{{stage=\"signed\"}}")));
    }

    #[test]
    fn clones_share_state_and_disabled_is_inert() {
        let reg = Registry::new();
        let spans = LifecycleSpans::new(&reg);
        let other = spans.clone();
        other.record(Stage::Retried, Duration::from_millis(10));
        assert_eq!(spans.histogram(Stage::Retried).count(), 1);

        let off = LifecycleSpans::disabled();
        off.record(Stage::Retried, Duration::from_millis(10));
        assert_eq!(off.histogram(Stage::Retried).count(), 0);
        assert!(!off.is_enabled());
    }
}
