//! Lock-free metric primitives and the unified registry.
//!
//! Three metric kinds are provided:
//!
//! * [`Counter`] — monotonically increasing `AtomicU64`.
//! * [`Gauge`] — settable `AtomicU64` (last-write-wins).
//! * [`Histogram`] — log-bucketed latency histogram in the HDR style:
//!   values are binned into 32 sub-buckets per power-of-two octave
//!   (≤ 3.2 % relative error), recorded with a single relaxed atomic
//!   increment, merged by pairwise bucket addition, and summarised via
//!   an immutable [`HistogramSnapshot`].
//!
//! Handles are cheap `Arc` clones. A handle minted by a *disabled*
//! registry carries `enabled = false` and turns every record operation
//! into one predictable branch, so instrumentation can stay inline on
//! hot paths at near-zero cost when observability is off.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::RwLock;

/// Number of sub-bucket bits per octave: 2^5 = 32 linear sub-buckets
/// between consecutive powers of two, bounding relative error at
/// `1/32 ≈ 3.1 %` (half that when bucket midpoints are reported).
const SUB_BITS: usize = 5;
/// Sub-buckets per octave.
const SUB: usize = 1 << SUB_BITS;
/// Total bucket count covering the full `u64` range: buckets `0..32`
/// hold exact values `0..32`, then 59 octaves of 32 sub-buckets each.
pub const BUCKETS: usize = SUB + (64 - SUB_BITS) * SUB;

/// Map a recorded value to its bucket index.
#[inline]
fn bucket_index(v: u64) -> usize {
    if v < SUB as u64 {
        return v as usize;
    }
    let octave = 63 - v.leading_zeros() as usize;
    let shift = octave - SUB_BITS;
    (shift + 1) * SUB + ((v >> shift) as usize - SUB)
}

/// Inclusive lower bound of the value range covered by bucket `idx`.
#[inline]
fn bucket_lower(idx: usize) -> u64 {
    if idx < SUB {
        return idx as u64;
    }
    let shift = idx / SUB - 1;
    ((SUB + idx % SUB) as u64) << shift
}

/// Representative value reported for bucket `idx`: its midpoint, which
/// halves the worst-case quantile error versus the lower bound.
#[inline]
fn bucket_mid(idx: usize) -> u64 {
    if idx < SUB {
        return idx as u64;
    }
    let shift = idx / SUB - 1;
    bucket_lower(idx) + ((1u64 << shift) >> 1)
}

/// Monotonic counter handle.
#[derive(Clone, Debug)]
pub struct Counter {
    cell: Arc<AtomicU64>,
    enabled: bool,
}

impl Counter {
    fn new(enabled: bool) -> Self {
        Counter {
            cell: Arc::new(AtomicU64::new(0)),
            enabled,
        }
    }

    /// Detached handle that ignores every increment.
    pub fn disabled() -> Self {
        Counter::new(false)
    }

    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if self.enabled {
            self.cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn value(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }

    /// Whether records on this handle take effect.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }
}

/// Settable gauge handle.
#[derive(Clone, Debug)]
pub struct Gauge {
    cell: Arc<AtomicU64>,
    enabled: bool,
}

impl Gauge {
    fn new(enabled: bool) -> Self {
        Gauge {
            cell: Arc::new(AtomicU64::new(0)),
            enabled,
        }
    }

    /// Detached handle that ignores every write.
    pub fn disabled() -> Self {
        Gauge::new(false)
    }

    /// Standalone live gauge, not attached to any registry. Kept for
    /// callers (like the resource monitor) that mint gauges directly.
    pub fn standalone() -> Self {
        Gauge::new(true)
    }

    /// Overwrite the value.
    #[inline]
    pub fn set(&self, v: u64) {
        if self.enabled {
            self.cell.store(v, Ordering::Relaxed);
        }
    }

    /// Add to the value (useful for free-running tallies).
    #[inline]
    pub fn add(&self, n: u64) {
        if self.enabled {
            self.cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn value(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }

    /// Whether writes on this handle take effect.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }
}

struct HistInner {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    min: AtomicU64,
}

/// Lock-free log-bucketed histogram. Values are raw `u64`s; by
/// convention the framework records **nanoseconds** so that snapshots
/// can be rendered in seconds downstream.
#[derive(Clone)]
pub struct Histogram {
    inner: Arc<HistInner>,
    enabled: bool,
}

impl Histogram {
    fn alloc(enabled: bool) -> Self {
        Histogram {
            inner: Arc::new(HistInner {
                buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
                max: AtomicU64::new(0),
                min: AtomicU64::new(u64::MAX),
            }),
            enabled,
        }
    }

    /// Fresh live histogram, not attached to any registry.
    pub fn new() -> Self {
        Histogram::alloc(true)
    }

    /// Detached handle that ignores every record.
    pub fn disabled() -> Self {
        Histogram {
            // Disabled handles never record, so one shared empty bucket
            // vector would also work; a private one keeps `snapshot`
            // uniform and the allocation happens once per handle mint.
            inner: Arc::new(HistInner {
                buckets: Vec::new(),
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
                max: AtomicU64::new(0),
                min: AtomicU64::new(u64::MAX),
            }),
            enabled: false,
        }
    }

    /// Record one value.
    #[inline]
    pub fn record(&self, v: u64) {
        if !self.enabled {
            return;
        }
        let inner = &*self.inner;
        inner.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        inner.count.fetch_add(1, Ordering::Relaxed);
        inner.sum.fetch_add(v, Ordering::Relaxed);
        inner.max.fetch_max(v, Ordering::Relaxed);
        inner.min.fetch_min(v, Ordering::Relaxed);
    }

    /// Record a duration as nanoseconds (saturating at `u64::MAX`).
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        if self.enabled {
            self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
        }
    }

    /// Fold another histogram into this one by pairwise bucket
    /// addition. Merging is commutative and associative up to
    /// concurrent-record races.
    pub fn merge(&self, other: &Histogram) {
        if !self.enabled || !other.enabled {
            return;
        }
        let dst = &*self.inner;
        let src = &*other.inner;
        for (d, s) in dst.buckets.iter().zip(src.buckets.iter()) {
            let n = s.load(Ordering::Relaxed);
            if n != 0 {
                d.fetch_add(n, Ordering::Relaxed);
            }
        }
        dst.count
            .fetch_add(src.count.load(Ordering::Relaxed), Ordering::Relaxed);
        dst.sum
            .fetch_add(src.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        dst.max
            .fetch_max(src.max.load(Ordering::Relaxed), Ordering::Relaxed);
        dst.min
            .fetch_min(src.min.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.inner.count.load(Ordering::Relaxed)
    }

    /// Whether records on this handle take effect.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Immutable point-in-time copy for quantile computation.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let inner = &*self.inner;
        HistogramSnapshot {
            buckets: inner
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: inner.count.load(Ordering::Relaxed),
            sum: inner.sum.load(Ordering::Relaxed),
            max: inner.max.load(Ordering::Relaxed),
            min: inner.min.load(Ordering::Relaxed),
        }
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

/// Frozen histogram state; all quantile queries run against this.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    buckets: Vec<u64>,
    /// Total recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Largest recorded value (exact).
    pub max: u64,
    /// Smallest recorded value (exact; `u64::MAX` when empty).
    pub min: u64,
}

impl HistogramSnapshot {
    /// Value at quantile `q` in `[0, 1]`, reported as the midpoint of
    /// the containing bucket (exact for values below 32). Returns 0
    /// for an empty snapshot; `q = 1` returns the exact max.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        if q >= 1.0 {
            return self.max;
        }
        let rank = (q.max(0.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_mid(idx).min(self.max).max(self.min);
            }
        }
        self.max
    }

    /// Median.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th percentile.
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Mean of recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Cumulative count of values recorded in buckets whose
    /// representative value is `<= bound` (Prometheus `le` semantics
    /// over bucket midpoints).
    pub fn cumulative_le(&self, bound: u64) -> u64 {
        let mut total = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            if n != 0 && bucket_mid(idx) <= bound {
                total += n;
            }
        }
        total
    }

    /// Fold another snapshot into this one (bucket-wise addition).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (d, s) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *d += s;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
        self.min = self.min.min(other.min);
    }
}

#[derive(Default)]
struct RegistryInner {
    counters: RwLock<BTreeMap<String, Counter>>,
    gauges: RwLock<BTreeMap<String, Gauge>>,
    histograms: RwLock<BTreeMap<String, Histogram>>,
}

/// Unified metric registry. Cloning shares the underlying metric maps;
/// metric lookups interned by name, so repeated calls with the same
/// name return handles to the same cell. A disabled registry hands out
/// detached disabled handles without touching the maps or any lock.
#[derive(Clone, Default)]
pub struct Registry {
    enabled: bool,
    inner: Arc<RegistryInner>,
}

impl Registry {
    /// Live registry.
    pub fn new() -> Self {
        Registry {
            enabled: true,
            inner: Arc::new(RegistryInner::default()),
        }
    }

    /// Disabled registry: every minted handle is a no-op.
    pub fn disabled() -> Self {
        Registry {
            enabled: false,
            inner: Arc::new(RegistryInner::default()),
        }
    }

    /// Whether this registry records anything.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Counter handle for `name`, creating it on first use.
    pub fn counter(&self, name: &str) -> Counter {
        if !self.enabled {
            return Counter::disabled();
        }
        if let Some(c) = self.inner.counters.read().get(name) {
            return c.clone();
        }
        self.inner
            .counters
            .write()
            .entry(name.to_owned())
            .or_insert_with(|| Counter::new(true))
            .clone()
    }

    /// Counter handle for `name` qualified by `labels`.
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        self.counter(&qualified(name, labels))
    }

    /// Gauge handle for `name`, creating it on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        if !self.enabled {
            return Gauge::disabled();
        }
        if let Some(g) = self.inner.gauges.read().get(name) {
            return g.clone();
        }
        self.inner
            .gauges
            .write()
            .entry(name.to_owned())
            .or_insert_with(|| Gauge::new(true))
            .clone()
    }

    /// Gauge handle for `name` qualified by `labels`.
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        self.gauge(&qualified(name, labels))
    }

    /// Histogram handle for `name`, creating it on first use.
    pub fn histogram(&self, name: &str) -> Histogram {
        if !self.enabled {
            return Histogram::disabled();
        }
        if let Some(h) = self.inner.histograms.read().get(name) {
            return h.clone();
        }
        self.inner
            .histograms
            .write()
            .entry(name.to_owned())
            .or_default()
            .clone()
    }

    /// Histogram handle for `name` qualified by `labels`.
    pub fn histogram_with(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        self.histogram(&qualified(name, labels))
    }

    /// All counters, sorted by full name.
    pub fn counters(&self) -> Vec<(String, u64)> {
        self.inner
            .counters
            .read()
            .iter()
            .map(|(k, v)| (k.clone(), v.value()))
            .collect()
    }

    /// All gauges, sorted by full name.
    pub fn gauges(&self) -> Vec<(String, u64)> {
        self.inner
            .gauges
            .read()
            .iter()
            .map(|(k, v)| (k.clone(), v.value()))
            .collect()
    }

    /// Snapshots of all histograms, sorted by full name.
    pub fn histograms(&self) -> Vec<(String, HistogramSnapshot)> {
        self.inner
            .histograms
            .read()
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot()))
            .collect()
    }
}

/// Build the full metric name `name{k1="v1",k2="v2"}`.
fn qualified(name: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return name.to_owned();
    }
    let mut out = String::with_capacity(name.len() + 16 * labels.len());
    out.push_str(name);
    out.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        out.push_str(v);
        out.push('"');
    }
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_in_range() {
        let mut prev = 0usize;
        let mut v = 0u64;
        while v < u64::MAX / 2 {
            let idx = bucket_index(v);
            assert!(idx < BUCKETS, "idx {idx} out of range for {v}");
            assert!(idx >= prev, "index not monotone at {v}");
            prev = idx;
            // Lower bound of the bucket must not exceed the value.
            assert!(bucket_lower(idx) <= v);
            v = v.saturating_mul(2).saturating_add(1);
        }
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn small_values_are_exact() {
        for v in 0..32u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_mid(v as usize), v);
        }
    }

    #[test]
    fn relative_error_is_bounded() {
        // Midpoint representative is within 1/64 of any value in the
        // bucket; allow 1/32 to be safe across bucket edges.
        for &v in &[33u64, 100, 1_000, 12_345, 1 << 20, (1 << 40) + 17] {
            let rep = bucket_mid(bucket_index(v));
            let err = rep.abs_diff(v) as f64 / v as f64;
            assert!(err <= 1.0 / 32.0, "error {err} too large for {v}");
        }
    }

    #[test]
    fn quantiles_match_sorted_vec_oracle() {
        // Deterministic pseudo-random values, compared against exact
        // quantiles from a sorted vector within the bucket error bound.
        let mut x = 0x2545F4914F6CDD1Du64;
        let mut values = Vec::new();
        let hist = Histogram::new();
        for _ in 0..10_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let v = x % 5_000_000;
            values.push(v);
            hist.record(v);
        }
        values.sort_unstable();
        let snap = hist.snapshot();
        assert_eq!(snap.count, 10_000);
        assert_eq!(snap.max, *values.last().unwrap());
        for &q in &[0.10, 0.50, 0.90, 0.95, 0.99] {
            let rank = ((q * values.len() as f64).ceil() as usize).max(1) - 1;
            let exact = values[rank];
            let approx = snap.quantile(q);
            let tol = (exact as f64 / 16.0).max(2.0); // 2 bucket widths
            assert!(
                (approx as f64 - exact as f64).abs() <= tol,
                "q={q}: approx {approx} vs exact {exact}"
            );
        }
        assert_eq!(snap.quantile(1.0), snap.max);
    }

    #[test]
    fn merge_is_associative_and_commutative() {
        let mk = |seed: u64, n: u64| {
            let h = Histogram::new();
            let mut x = seed;
            for _ in 0..n {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                h.record(x >> 33);
            }
            h
        };
        let (a, b, c) = (mk(1, 500), mk(2, 700), mk(3, 900));

        // (a + b) + c
        let left = Histogram::new();
        left.merge(&a);
        left.merge(&b);
        left.merge(&c);
        // a + (b + c)
        let bc = Histogram::new();
        bc.merge(&b);
        bc.merge(&c);
        let right = Histogram::new();
        right.merge(&a);
        right.merge(&bc);
        // c + b + a (commutativity)
        let rev = Histogram::new();
        rev.merge(&c);
        rev.merge(&b);
        rev.merge(&a);

        assert_eq!(left.snapshot(), right.snapshot());
        assert_eq!(left.snapshot(), rev.snapshot());
        assert_eq!(left.count(), 2100);
    }

    #[test]
    fn snapshot_merge_matches_histogram_merge() {
        let a = Histogram::new();
        let b = Histogram::new();
        for v in 0..100u64 {
            a.record(v * 7);
            b.record(v * 13 + 5);
        }
        let merged = Histogram::new();
        merged.merge(&a);
        merged.merge(&b);
        let mut snap = a.snapshot();
        snap.merge(&b.snapshot());
        assert_eq!(snap, merged.snapshot());
    }

    #[test]
    fn disabled_handles_record_nothing() {
        let reg = Registry::disabled();
        let c = reg.counter("x");
        let g = reg.gauge("y");
        let h = reg.histogram("z");
        c.add(5);
        g.set(9);
        h.record(100);
        h.record_duration(Duration::from_millis(3));
        assert_eq!(c.value(), 0);
        assert_eq!(g.value(), 0);
        assert_eq!(h.count(), 0);
        assert!(reg.counters().is_empty());
        assert!(reg.gauges().is_empty());
        assert!(reg.histograms().is_empty());
        assert!(!reg.is_enabled());
    }

    #[test]
    fn registry_interns_by_name_and_label() {
        let reg = Registry::new();
        reg.counter("hits").inc();
        reg.counter("hits").add(2);
        assert_eq!(reg.counter("hits").value(), 3);

        let labelled = reg.counter_with("bytes", &[("from", "a"), ("to", "b")]);
        labelled.add(10);
        assert_eq!(
            reg.counter_with("bytes", &[("from", "a"), ("to", "b")])
                .value(),
            10
        );
        let names: Vec<String> = reg.counters().into_iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["bytes{from=\"a\",to=\"b\"}", "hits"]);
    }

    #[test]
    fn gauge_set_and_add() {
        let reg = Registry::new();
        let g = reg.gauge("depth");
        g.set(7);
        g.add(3);
        assert_eq!(g.value(), 10);
        g.set(1);
        assert_eq!(reg.gauge("depth").value(), 1);
    }

    #[test]
    fn empty_snapshot_quantiles_are_zero() {
        let snap = Histogram::new().snapshot();
        assert_eq!(snap.p50(), 0);
        assert_eq!(snap.quantile(1.0), 0);
        assert_eq!(snap.mean(), 0.0);
    }

    #[test]
    fn concurrent_records_are_all_counted() {
        let h = Histogram::new();
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let h = h.clone();
                s.spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(t * 1_000 + i % 997);
                    }
                });
            }
        });
        assert_eq!(h.count(), 40_000);
        assert_eq!(h.snapshot().count, 40_000);
    }
}
