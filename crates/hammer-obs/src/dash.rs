//! ASCII dashboard: the framework's Grafana stand-in. Renders a TPS
//! sparkline, a latency quantile table over every registered
//! histogram, per-node resource rows (gauges and counters), and the
//! tail of the event journal.

use std::fmt::Write as _;

use crate::journal::Journal;
use crate::metrics::Registry;
use crate::Obs;

const SPARK: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// How many trailing journal events the dashboard shows.
const JOURNAL_TAIL: usize = 8;

/// Render a one-line sparkline for `points` (empty input → empty
/// string; a constant series renders mid-height).
pub fn sparkline(points: &[f64]) -> String {
    if points.is_empty() {
        return String::new();
    }
    let lo = points.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = points.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = hi - lo;
    points
        .iter()
        .map(|&p| {
            let level = if span <= f64::EPSILON {
                SPARK.len() / 2
            } else {
                (((p - lo) / span) * (SPARK.len() - 1) as f64).round() as usize
            };
            SPARK[level.min(SPARK.len() - 1)]
        })
        .collect()
}

/// Render the full dashboard from an [`Obs`] bundle plus the run's TPS
/// series (transactions per second per sample interval).
pub fn render_dashboard(obs: &Obs, tps_series: &[f64]) -> String {
    let mut out = String::new();
    render_tps(&mut out, tps_series);
    render_latency_table(&mut out, obs.registry());
    render_resources(&mut out, obs.registry());
    render_journal_tail(&mut out, obs.journal());
    out
}

fn render_tps(out: &mut String, tps: &[f64]) {
    let _ = writeln!(out, "== TPS ==");
    if tps.is_empty() {
        let _ = writeln!(out, "(no samples)");
        let _ = writeln!(out);
        return;
    }
    let lo = tps.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = tps.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let mean = tps.iter().sum::<f64>() / tps.len() as f64;
    let _ = writeln!(out, "{}", sparkline(tps));
    let _ = writeln!(
        out,
        "min {lo:.1}  mean {mean:.1}  max {hi:.1}  ({} samples)",
        tps.len()
    );
    let _ = writeln!(out);
}

fn render_latency_table(out: &mut String, registry: &Registry) {
    let _ = writeln!(out, "== Latency quantiles (s) ==");
    let hists = registry.histograms();
    if hists.is_empty() {
        let _ = writeln!(out, "(no histograms)");
        let _ = writeln!(out);
        return;
    }
    let name_w = hists
        .iter()
        .map(|(n, _)| n.len())
        .max()
        .unwrap_or(0)
        .max("histogram".len());
    let _ = writeln!(
        out,
        "{:<name_w$}  {:>8}  {:>10}  {:>10}  {:>10}  {:>10}",
        "histogram", "count", "p50", "p95", "p99", "max"
    );
    for (name, snap) in hists {
        let _ = writeln!(
            out,
            "{:<name_w$}  {:>8}  {:>10.6}  {:>10.6}  {:>10.6}  {:>10.6}",
            name,
            snap.count,
            ns_to_s(snap.p50()),
            ns_to_s(snap.p95()),
            ns_to_s(snap.p99()),
            ns_to_s(snap.max),
        );
    }
    let _ = writeln!(out);
}

fn render_resources(out: &mut String, registry: &Registry) {
    let gauges = registry.gauges();
    let counters = registry.counters();
    let _ = writeln!(out, "== Resources ==");
    if gauges.is_empty() && counters.is_empty() {
        let _ = writeln!(out, "(no metrics)");
        let _ = writeln!(out);
        return;
    }
    let name_w = gauges
        .iter()
        .chain(counters.iter())
        .map(|(n, _)| n.len())
        .max()
        .unwrap_or(0)
        .max("metric".len());
    let _ = writeln!(out, "{:<name_w$}  {:>14}  kind", "metric", "value");
    for (name, value) in &gauges {
        let _ = writeln!(out, "{name:<name_w$}  {value:>14}  gauge");
    }
    for (name, value) in &counters {
        let _ = writeln!(out, "{name:<name_w$}  {value:>14}  counter");
    }
    let _ = writeln!(out);
}

fn render_journal_tail(out: &mut String, journal: &Journal) {
    let events = journal.events();
    let _ = writeln!(
        out,
        "== Journal (last {JOURNAL_TAIL} of {}) ==",
        events.len()
    );
    let start = events.len().saturating_sub(JOURNAL_TAIL);
    if events.is_empty() {
        let _ = writeln!(out, "(empty)");
        return;
    }
    for e in &events[start..] {
        let _ = writeln!(
            out,
            "[{:>10.3}s] {:<15} {:<24} {} value={}",
            e.at.as_secs_f64(),
            e.kind.as_str(),
            e.node,
            e.detail,
            e.value
        );
    }
}

fn ns_to_s(ns: u64) -> f64 {
    ns as f64 / 1e9
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::Stage;
    use std::time::Duration;

    #[test]
    fn sparkline_scales_and_handles_edges() {
        assert_eq!(sparkline(&[]), "");
        let flat = sparkline(&[5.0, 5.0, 5.0]);
        assert_eq!(flat.chars().count(), 3);
        let ramp = sparkline(&[0.0, 1.0, 2.0, 3.0]);
        let chars: Vec<char> = ramp.chars().collect();
        assert_eq!(chars[0], '▁');
        assert_eq!(chars[3], '█');
    }

    #[test]
    fn dashboard_renders_every_section() {
        let obs = Obs::new();
        obs.registry()
            .counter("hammer_driver_submitted_total")
            .add(10);
        obs.registry().gauge("hammer_chain_mempool_depth").set(3);
        obs.spans()
            .record(Stage::InBlock, Duration::from_millis(25));
        obs.journal()
            .block_seal(Duration::from_secs(1), "eth-node-0", 1, 50);

        let text = render_dashboard(&obs, &[10.0, 20.0, 15.0]);
        assert!(text.contains("== TPS =="));
        assert!(text.contains("3 samples"));
        assert!(text.contains("== Latency quantiles"));
        assert!(text.contains("hammer_span_stage_ns{stage=\"in_block\"}"));
        assert!(text.contains("== Resources =="));
        assert!(text.contains("hammer_driver_submitted_total"));
        assert!(text.contains("== Journal"));
        assert!(text.contains("block_seal"));
    }

    #[test]
    fn dashboard_survives_an_empty_run() {
        let obs = Obs::disabled();
        let text = render_dashboard(&obs, &[]);
        assert!(text.contains("(no samples)"));
        assert!(text.contains("(no histograms)"));
        assert!(text.contains("(empty)"));
    }
}
