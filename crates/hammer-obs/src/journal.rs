//! Structured event journal: a bounded ring buffer of run events with
//! a JSONL sink.
//!
//! The journal captures the *discrete* events of a run — fault-window
//! transitions, backpressure episodes, retry exhaustion, block seals —
//! that aggregate metrics cannot express. It is bounded: when full,
//! the oldest event is dropped and a drop counter is bumped, so a
//! misbehaving run can never exhaust memory.

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

/// Default ring capacity, sized for a full evaluation run's seals and
/// fault transitions with headroom.
pub const DEFAULT_JOURNAL_CAPACITY: usize = 4096;

/// Discrete event classes recorded in the journal.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A fault-plan window became active.
    FaultEnter,
    /// A fault-plan window ended.
    FaultExit,
    /// A submission hit chain backpressure (first occurrence per tx).
    Backpressure,
    /// A transaction exhausted its retry budget or slice deadline.
    RetryExhausted,
    /// A chain sim sealed a block or epoch.
    BlockSeal,
    /// The driver's stall watchdog detected a no-progress interval and
    /// aborted the run gracefully.
    Stalled,
}

impl EventKind {
    /// Stable snake_case label used in the JSONL sink.
    pub fn as_str(self) -> &'static str {
        match self {
            EventKind::FaultEnter => "fault_enter",
            EventKind::FaultExit => "fault_exit",
            EventKind::Backpressure => "backpressure",
            EventKind::RetryExhausted => "retry_exhausted",
            EventKind::BlockSeal => "block_seal",
            EventKind::Stalled => "stalled",
        }
    }
}

/// One journal entry. `at` is simulation time; `node` names the
/// emitting node or slice; `detail` is free-form context; `value`
/// carries the event's primary magnitude (txs in a sealed block,
/// retry attempts spent, …).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JournalEvent {
    /// Simulation timestamp of the event.
    pub at: Duration,
    /// Event class.
    pub kind: EventKind,
    /// Emitting node, window label, or slice.
    pub node: String,
    /// Free-form context.
    pub detail: String,
    /// Primary magnitude of the event.
    pub value: u64,
}

struct JournalInner {
    events: Mutex<VecDeque<JournalEvent>>,
    capacity: usize,
    dropped: AtomicU64,
}

/// Bounded event journal handle; clones share the ring.
#[derive(Clone)]
pub struct Journal {
    inner: Arc<JournalInner>,
    enabled: bool,
}

impl Journal {
    /// Live journal with the given ring capacity (min 1).
    pub fn with_capacity(capacity: usize) -> Self {
        Journal {
            inner: Arc::new(JournalInner {
                events: Mutex::new(VecDeque::new()),
                capacity: capacity.max(1),
                dropped: AtomicU64::new(0),
            }),
            enabled: true,
        }
    }

    /// Live journal with [`DEFAULT_JOURNAL_CAPACITY`].
    pub fn new() -> Self {
        Journal::with_capacity(DEFAULT_JOURNAL_CAPACITY)
    }

    /// Disabled journal: every push is a no-op.
    pub fn disabled() -> Self {
        Journal {
            inner: Arc::new(JournalInner {
                events: Mutex::new(VecDeque::new()),
                capacity: 0,
                dropped: AtomicU64::new(0),
            }),
            enabled: false,
        }
    }

    /// Whether pushes take effect.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Append an event, evicting the oldest entry when full.
    pub fn push(&self, event: JournalEvent) {
        if !self.enabled {
            return;
        }
        let mut events = self.inner.events.lock();
        if events.len() == self.inner.capacity {
            events.pop_front();
            self.inner.dropped.fetch_add(1, Ordering::Relaxed);
        }
        events.push_back(event);
    }

    /// Record a sealed block/epoch.
    pub fn block_seal(&self, at: Duration, node: &str, height: u64, txs: usize) {
        if !self.enabled {
            return;
        }
        self.push(JournalEvent {
            at,
            kind: EventKind::BlockSeal,
            node: node.to_owned(),
            detail: format!("height={height}"),
            value: txs as u64,
        });
    }

    /// Record a fault window becoming active.
    pub fn fault_enter(&self, at: Duration, label: &str) {
        if !self.enabled {
            return;
        }
        self.push(JournalEvent {
            at,
            kind: EventKind::FaultEnter,
            node: label.to_owned(),
            detail: String::new(),
            value: 0,
        });
    }

    /// Record a fault window ending.
    pub fn fault_exit(&self, at: Duration, label: &str) {
        if !self.enabled {
            return;
        }
        self.push(JournalEvent {
            at,
            kind: EventKind::FaultExit,
            node: label.to_owned(),
            detail: String::new(),
            value: 0,
        });
    }

    /// Record a backpressure episode on `node` (one per transaction).
    pub fn backpressure(&self, at: Duration, node: &str, detail: &str) {
        if !self.enabled {
            return;
        }
        self.push(JournalEvent {
            at,
            kind: EventKind::Backpressure,
            node: node.to_owned(),
            detail: detail.to_owned(),
            value: 0,
        });
    }

    /// Record a stall-watchdog abort: no commit, retry, or chain
    /// progress for `budget_s` simulated seconds with work outstanding.
    /// `pending` carries the number of in-flight transactions stranded
    /// by the stall.
    pub fn stalled(&self, at: Duration, node: &str, budget: Duration, pending: u64) {
        if !self.enabled {
            return;
        }
        self.push(JournalEvent {
            at,
            kind: EventKind::Stalled,
            node: node.to_owned(),
            detail: format!("budget_s={:.3}", budget.as_secs_f64()),
            value: pending,
        });
    }

    /// Record a transaction giving up after `attempts` tries.
    pub fn retry_exhausted(&self, at: Duration, node: &str, outcome: &str, attempts: u64) {
        if !self.enabled {
            return;
        }
        self.push(JournalEvent {
            at,
            kind: EventKind::RetryExhausted,
            node: node.to_owned(),
            detail: outcome.to_owned(),
            value: attempts,
        });
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.inner.events.lock().len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Ring capacity (0 when disabled).
    pub fn capacity(&self) -> usize {
        self.inner.capacity * usize::from(self.enabled)
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.inner.dropped.load(Ordering::Relaxed)
    }

    /// Copy of the buffered events, oldest first.
    pub fn events(&self) -> Vec<JournalEvent> {
        self.inner.events.lock().iter().cloned().collect()
    }

    /// Count of buffered events of one kind.
    pub fn count_of(&self, kind: EventKind) -> usize {
        self.inner
            .events
            .lock()
            .iter()
            .filter(|e| e.kind == kind)
            .count()
    }

    /// Serialise the buffered events as JSON Lines, oldest first.
    pub fn to_jsonl(&self) -> String {
        let events = self.inner.events.lock();
        let mut out = String::with_capacity(events.len() * 96);
        for e in events.iter() {
            let _ = write!(
                out,
                "{{\"at_s\":{:.6},\"kind\":\"{}\",\"node\":\"",
                e.at.as_secs_f64(),
                e.kind.as_str()
            );
            escape_into(&mut out, &e.node);
            out.push_str("\",\"detail\":\"");
            escape_into(&mut out, &e.detail);
            let _ = writeln!(out, "\",\"value\":{}}}", e.value);
        }
        out
    }

    /// Write the JSONL serialisation to `path`.
    pub fn write_jsonl(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_jsonl())
    }
}

impl Default for Journal {
    fn default() -> Self {
        Journal::new()
    }
}

/// Minimal JSON string escaping for labels and details.
fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_buffer_bounds_hold_and_oldest_is_evicted() {
        let j = Journal::with_capacity(3);
        for i in 0..5u64 {
            j.block_seal(Duration::from_secs(i), "n", i, 10);
        }
        assert_eq!(j.len(), 3);
        assert_eq!(j.dropped(), 2);
        let events = j.events();
        // Oldest two (heights 0 and 1) were evicted.
        assert_eq!(events[0].detail, "height=2");
        assert_eq!(events[2].detail, "height=4");
        assert_eq!(j.capacity(), 3);
    }

    #[test]
    fn disabled_journal_is_inert() {
        let j = Journal::disabled();
        j.block_seal(Duration::ZERO, "n", 1, 2);
        j.fault_enter(Duration::ZERO, "w");
        j.push(JournalEvent {
            at: Duration::ZERO,
            kind: EventKind::Backpressure,
            node: "n".into(),
            detail: String::new(),
            value: 0,
        });
        assert!(j.is_empty());
        assert_eq!(j.capacity(), 0);
        assert!(!j.is_enabled());
        assert!(j.to_jsonl().is_empty());
    }

    #[test]
    fn jsonl_serialisation_escapes_and_orders() {
        let j = Journal::new();
        j.fault_enter(Duration::from_millis(1500), "crash \"w1\"");
        j.retry_exhausted(Duration::from_secs(2), "client-3", "dropped", 8);
        let text = j.to_jsonl();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"at_s\":1.500000"));
        assert!(lines[0].contains("\\\"w1\\\""));
        assert!(lines[1].contains("\"kind\":\"retry_exhausted\""));
        assert!(lines[1].contains("\"value\":8"));
    }

    #[test]
    fn helpers_tag_kinds_correctly() {
        let j = Journal::new();
        j.fault_enter(Duration::ZERO, "w");
        j.fault_exit(Duration::from_secs(1), "w");
        j.backpressure(Duration::from_secs(2), "eth-node-0", "mempool full");
        j.retry_exhausted(Duration::from_secs(3), "client-0", "expired", 4);
        j.block_seal(Duration::from_secs(4), "eth-node-0", 7, 120);
        j.stalled(Duration::from_secs(5), "driver", Duration::from_secs(8), 42);
        assert_eq!(j.count_of(EventKind::FaultEnter), 1);
        assert_eq!(j.count_of(EventKind::FaultExit), 1);
        assert_eq!(j.count_of(EventKind::Backpressure), 1);
        assert_eq!(j.count_of(EventKind::RetryExhausted), 1);
        assert_eq!(j.count_of(EventKind::BlockSeal), 1);
        assert_eq!(j.count_of(EventKind::Stalled), 1);
        assert_eq!(j.events()[4].value, 120);
        let stall = &j.events()[5];
        assert_eq!(stall.detail, "budget_s=8.000");
        assert_eq!(stall.value, 42);
    }
}
