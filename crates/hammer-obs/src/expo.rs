//! Prometheus text-format exposition: a renderer for [`Registry`]
//! contents and a minimal parser used to round-trip the output in
//! tests (and by anything that wants to scrape a run).
//!
//! Histograms are rendered in the native Prometheus histogram shape —
//! cumulative `_bucket{le="…"}` series over a fixed geometric boundary
//! ladder, plus `_sum` and `_count`. Metric families are emitted in
//! sorted name order so output is deterministic.

use std::fmt::Write as _;

use crate::metrics::{HistogramSnapshot, Registry};

/// `le` boundary ladder for exposed histograms: powers of four across
/// the full range recorded in practice (ns-scale values up to ~1.2e18).
fn le_bounds() -> impl Iterator<Item = u64> {
    (0..31u32).map(|k| 1u64 << (2 * k))
}

/// Render every metric in `registry` in Prometheus text format. A
/// disabled registry renders to an empty string.
pub fn render(registry: &Registry) -> String {
    let mut out = String::new();
    for (name, value) in registry.counters() {
        family_header(&mut out, &name, "counter");
        let _ = writeln!(out, "{name} {value}");
    }
    for (name, value) in registry.gauges() {
        family_header(&mut out, &name, "gauge");
        let _ = writeln!(out, "{name} {value}");
    }
    for (name, snap) in registry.histograms() {
        family_header(&mut out, &name, "histogram");
        render_histogram(&mut out, &name, &snap);
    }
    out
}

/// Emit a `# TYPE` line once per metric family (base name without
/// labels), relying on the registry's sorted iteration order to group
/// label variants of one family together.
fn family_header(out: &mut String, full_name: &str, kind: &str) {
    let base = base_name(full_name);
    let marker = format!("# TYPE {base} {kind}\n");
    if !out.ends_with(&marker) && !out.contains(&marker) {
        out.push_str(&marker);
    }
}

fn base_name(full_name: &str) -> &str {
    full_name.split('{').next().unwrap_or(full_name)
}

/// Split `name{a="b"}` into (`name`, `a="b"`); the label part is empty
/// when the metric has no labels.
fn split_labels(full_name: &str) -> (&str, &str) {
    match full_name.split_once('{') {
        Some((base, rest)) => (base, rest.trim_end_matches('}')),
        None => (full_name, ""),
    }
}

fn render_histogram(out: &mut String, full_name: &str, snap: &HistogramSnapshot) {
    let (base, labels) = split_labels(full_name);
    let sep = if labels.is_empty() { "" } else { "," };
    for bound in le_bounds() {
        let _ = writeln!(
            out,
            "{base}_bucket{{{labels}{sep}le=\"{bound}\"}} {}",
            snap.cumulative_le(bound)
        );
    }
    let _ = writeln!(
        out,
        "{base}_bucket{{{labels}{sep}le=\"+Inf\"}} {}",
        snap.count
    );
    if labels.is_empty() {
        let _ = writeln!(out, "{base}_sum {}", snap.sum);
        let _ = writeln!(out, "{base}_count {}", snap.count);
    } else {
        let _ = writeln!(out, "{base}_sum{{{labels}}} {}", snap.sum);
        let _ = writeln!(out, "{base}_count{{{labels}}} {}", snap.count);
    }
}

/// One parsed sample line.
#[derive(Clone, Debug, PartialEq)]
pub struct Sample {
    /// Metric name (without labels).
    pub name: String,
    /// Label pairs in source order.
    pub labels: Vec<(String, String)>,
    /// Sample value.
    pub value: f64,
}

impl Sample {
    /// Value of label `key`, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// Parse Prometheus text format into samples. Comment (`#`) and blank
/// lines are skipped. Returns an error naming the first malformed line.
pub fn parse(text: &str) -> Result<Vec<Sample>, String> {
    let mut samples = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        samples.push(parse_line(line).map_err(|e| format!("line {}: {e}", lineno + 1))?);
    }
    Ok(samples)
}

fn parse_line(line: &str) -> Result<Sample, String> {
    let (name_part, value_part) = match line.find('{') {
        Some(_) => {
            let close = line.rfind('}').ok_or("unterminated label set")?;
            (&line[..close + 1], line[close + 1..].trim())
        }
        None => {
            let sp = line.find(' ').ok_or("missing value")?;
            (&line[..sp], line[sp..].trim())
        }
    };
    let value: f64 = if value_part == "+Inf" {
        f64::INFINITY
    } else {
        value_part
            .parse()
            .map_err(|_| format!("bad value {value_part:?}"))?
    };
    let (name, label_str) = split_labels(name_part);
    if name.is_empty() {
        return Err("empty metric name".into());
    }
    let mut labels = Vec::new();
    if !label_str.is_empty() {
        for pair in label_str.split(',') {
            let (k, v) = pair
                .split_once('=')
                .ok_or_else(|| format!("bad label {pair:?}"))?;
            let v = v
                .strip_prefix('"')
                .and_then(|v| v.strip_suffix('"'))
                .ok_or_else(|| format!("unquoted label value {v:?}"))?;
            labels.push((k.to_owned(), v.to_owned()));
        }
    }
    Ok(Sample {
        name: name.to_owned(),
        labels,
        value,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exposition_round_trips_through_the_parser() {
        let reg = Registry::new();
        reg.counter("hammer_driver_submitted_total").add(1234);
        reg.counter_with(
            "hammer_net_link_bytes_total",
            &[("from", "c0"), ("to", "eth-node-0")],
        )
        .add(987_654);
        reg.gauge("hammer_chain_mempool_depth").set(42);
        let h = reg.histogram_with("hammer_span_stage_ns", &[("stage", "in_block")]);
        for v in [100u64, 1_000, 10_000, 100_000, 1_000_000] {
            h.record(v);
        }

        let text = render(&reg);
        let samples = parse(&text).expect("rendered text must parse");

        let find = |name: &str| {
            samples
                .iter()
                .filter(|s| s.name == name)
                .collect::<Vec<_>>()
        };
        assert_eq!(find("hammer_driver_submitted_total")[0].value, 1234.0);

        let link = find("hammer_net_link_bytes_total");
        assert_eq!(link[0].label("from"), Some("c0"));
        assert_eq!(link[0].value, 987_654.0);

        assert_eq!(find("hammer_chain_mempool_depth")[0].value, 42.0);

        let count = find("hammer_span_stage_ns_count");
        assert_eq!(count[0].label("stage"), Some("in_block"));
        assert_eq!(count[0].value, 5.0);
        let sum = find("hammer_span_stage_ns_sum");
        assert_eq!(sum[0].value, 1_111_100.0);

        // Bucket series must be cumulative and end at the total count.
        let buckets = find("hammer_span_stage_ns_bucket");
        let mut prev = 0.0;
        for b in &buckets {
            assert!(b.value >= prev, "bucket series must be cumulative");
            prev = b.value;
        }
        let inf = buckets
            .iter()
            .find(|b| b.label("le") == Some("+Inf"))
            .unwrap();
        assert_eq!(inf.value, 5.0);
        assert_eq!(inf.label("stage"), Some("in_block"));
    }

    #[test]
    fn type_lines_appear_once_per_family() {
        let reg = Registry::new();
        reg.counter_with("x_total", &[("a", "1")]).inc();
        reg.counter_with("x_total", &[("a", "2")]).inc();
        let text = render(&reg);
        assert_eq!(text.matches("# TYPE x_total counter").count(), 1);
    }

    #[test]
    fn disabled_registry_renders_empty() {
        let reg = Registry::disabled();
        reg.counter("x").inc();
        assert!(render(&reg).is_empty());
        assert!(parse(&render(&reg)).unwrap().is_empty());
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        assert!(parse("metric_without_value").is_err());
        assert!(parse("m{unterminated 1").is_err());
        assert!(parse("m{k=unquoted} 1").is_err());
        assert!(parse("m nanvalue").is_err());
    }

    #[test]
    fn parser_skips_comments_and_blanks() {
        let text = "# HELP m something\n# TYPE m counter\n\nm 3\n";
        let samples = parse(text).unwrap();
        assert_eq!(samples.len(), 1);
        assert_eq!(samples[0].name, "m");
        assert_eq!(samples[0].value, 3.0);
    }
}
