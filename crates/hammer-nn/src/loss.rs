//! Loss functions with gradients: MAE (paper Eq. 8) and MSE.

use crate::mat::Mat;

/// Mean absolute error and its gradient w.r.t. the prediction.
///
/// The paper trains with MAE: `L = (1/n) Σ |y_i - ŷ_i|`.
pub fn mae_loss(prediction: &Mat, target: &Mat) -> (f32, Mat) {
    assert_eq!(
        (prediction.rows(), prediction.cols()),
        (target.rows(), target.cols()),
        "shape mismatch"
    );
    let n = (prediction.rows() * prediction.cols()) as f32;
    let mut loss = 0.0;
    let mut grad = Mat::zeros(prediction.rows(), prediction.cols());
    for i in 0..prediction.data().len() {
        let diff = prediction.data()[i] - target.data()[i];
        loss += diff.abs();
        // Note: f32::signum(0.0) is 1.0, so spell out the subgradient.
        grad.data_mut()[i] = if diff > 0.0 {
            1.0 / n
        } else if diff < 0.0 {
            -1.0 / n
        } else {
            0.0
        };
    }
    (loss / n, grad)
}

/// Mean squared error and its gradient w.r.t. the prediction.
pub fn mse_loss(prediction: &Mat, target: &Mat) -> (f32, Mat) {
    assert_eq!(
        (prediction.rows(), prediction.cols()),
        (target.rows(), target.cols()),
        "shape mismatch"
    );
    let n = (prediction.rows() * prediction.cols()) as f32;
    let mut loss = 0.0;
    let mut grad = Mat::zeros(prediction.rows(), prediction.cols());
    for i in 0..prediction.data().len() {
        let diff = prediction.data()[i] - target.data()[i];
        loss += diff * diff;
        grad.data_mut()[i] = 2.0 * diff / n;
    }
    (loss / n, grad)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mae_value_and_grad() {
        let p = Mat::from_vec(1, 2, vec![3.0, 1.0]);
        let t = Mat::from_vec(1, 2, vec![1.0, 2.0]);
        let (loss, grad) = mae_loss(&p, &t);
        assert!((loss - 1.5).abs() < 1e-6); // (2 + 1)/2
        assert_eq!(grad.data(), &[0.5, -0.5]);
    }

    #[test]
    fn mse_value_and_grad() {
        let p = Mat::from_vec(1, 2, vec![3.0, 1.0]);
        let t = Mat::from_vec(1, 2, vec![1.0, 2.0]);
        let (loss, grad) = mse_loss(&p, &t);
        assert!((loss - 2.5).abs() < 1e-6); // (4 + 1)/2
        assert_eq!(grad.data(), &[2.0, -1.0]);
    }

    #[test]
    fn perfect_prediction_zero_loss() {
        let p = Mat::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let (mae, g1) = mae_loss(&p, &p);
        let (mse, g2) = mse_loss(&p, &p);
        assert_eq!(mae, 0.0);
        assert_eq!(mse, 0.0);
        assert_eq!(g2.norm(), 0.0);
        let _ = g1; // MAE grad at zero uses signum(0) = 0
        assert_eq!(g1.norm(), 0.0);
    }

    #[test]
    fn mse_grad_is_numerically_correct() {
        let p = Mat::from_vec(1, 3, vec![0.5, -1.0, 2.0]);
        let t = Mat::from_vec(1, 3, vec![0.0, 0.0, 0.0]);
        let (_, grad) = mse_loss(&p, &t);
        let eps = 1e-3;
        for i in 0..3 {
            let mut pp = p.clone();
            pp.data_mut()[i] += eps;
            let (lp, _) = mse_loss(&pp, &t);
            let mut pm = p.clone();
            pm.data_mut()[i] -= eps;
            let (lm, _) = mse_loss(&pm, &t);
            let numeric = (lp - lm) / (2.0 * eps);
            assert!((grad.data()[i] - numeric).abs() < 1e-3, "i={i}");
        }
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn shape_mismatch_panics() {
        let _ = mae_loss(&Mat::zeros(1, 2), &Mat::zeros(2, 1));
    }
}
