//! The layer abstraction, dense layers, activations, and sequential
//! composition.

use rand::Rng;

use crate::mat::Mat;

/// A trainable parameter: value plus accumulated gradient.
#[derive(Clone, Debug)]
pub struct Param {
    /// The parameter value.
    pub value: Mat,
    /// Accumulated gradient (same shape).
    pub grad: Mat,
}

impl Param {
    /// A parameter with zeroed gradient.
    pub fn new(value: Mat) -> Self {
        let grad = Mat::zeros(value.rows(), value.cols());
        Param { value, grad }
    }

    /// Zeroes the gradient.
    pub fn zero_grad(&mut self) {
        self.grad = Mat::zeros(self.value.rows(), self.value.cols());
    }
}

/// A differentiable layer over `T × C` sequence matrices.
///
/// `forward` caches whatever `backward` needs; `backward` consumes the
/// loss gradient w.r.t. the output and returns the gradient w.r.t. the
/// input while accumulating parameter gradients.
pub trait Layer {
    /// Forward pass.
    fn forward(&mut self, x: &Mat) -> Mat;
    /// Backward pass: `grad_out` is dL/d(output); returns dL/d(input).
    fn backward(&mut self, grad_out: &Mat) -> Mat;
    /// All trainable parameters.
    fn params_mut(&mut self) -> Vec<&mut Param>;
    /// Zeroes every parameter gradient.
    fn zero_grads(&mut self) {
        for p in self.params_mut() {
            p.zero_grad();
        }
    }
    /// Total number of scalar parameters.
    fn param_count(&mut self) -> usize {
        self.params_mut()
            .iter()
            .map(|p| p.value.rows() * p.value.cols())
            .sum()
    }
}

/// A dense layer: `y = x W + b`, applied row-wise over the sequence.
#[derive(Clone, Debug)]
pub struct Linear {
    w: Param,
    b: Param,
    cached_x: Option<Mat>,
}

impl Linear {
    /// A dense layer mapping `in_dim` to `out_dim` channels.
    pub fn new<R: Rng + ?Sized>(in_dim: usize, out_dim: usize, rng: &mut R) -> Self {
        Linear {
            w: Param::new(Mat::xavier(in_dim, out_dim, rng)),
            b: Param::new(Mat::zeros(1, out_dim)),
            cached_x: None,
        }
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.w.value.cols()
    }
}

impl Layer for Linear {
    fn forward(&mut self, x: &Mat) -> Mat {
        self.cached_x = Some(x.clone());
        x.matmul(&self.w.value).add_row_broadcast(&self.b.value)
    }

    fn backward(&mut self, grad_out: &Mat) -> Mat {
        let x = self.cached_x.as_ref().expect("forward before backward");
        self.w.grad.add_assign(&x.transpose().matmul(grad_out));
        self.b.grad.add_assign(&grad_out.sum_rows());
        grad_out.matmul(&self.w.value.transpose())
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.w, &mut self.b]
    }
}

/// ReLU activation.
#[derive(Clone, Debug, Default)]
pub struct Relu {
    cached_x: Option<Mat>,
}

impl Relu {
    /// A new ReLU.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Relu {
    fn forward(&mut self, x: &Mat) -> Mat {
        self.cached_x = Some(x.clone());
        x.map(|v| v.max(0.0))
    }

    fn backward(&mut self, grad_out: &Mat) -> Mat {
        let x = self.cached_x.as_ref().expect("forward before backward");
        let mask = x.map(|v| if v > 0.0 { 1.0 } else { 0.0 });
        grad_out.hadamard(&mask)
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        Vec::new()
    }
}

/// Tanh activation.
#[derive(Clone, Debug, Default)]
pub struct Tanh {
    cached_y: Option<Mat>,
}

impl Tanh {
    /// A new Tanh.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Tanh {
    fn forward(&mut self, x: &Mat) -> Mat {
        let y = x.map(f32::tanh);
        self.cached_y = Some(y.clone());
        y
    }

    fn backward(&mut self, grad_out: &Mat) -> Mat {
        let y = self.cached_y.as_ref().expect("forward before backward");
        let dydx = y.map(|v| 1.0 - v * v);
        grad_out.hadamard(&dydx)
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        Vec::new()
    }
}

/// Layer normalisation over each row (time step): normalises the channel
/// vector to zero mean / unit variance, then applies a learned affine
/// `gamma ⊙ x̂ + beta`. Stabilises attention stacks on small data.
#[derive(Clone, Debug)]
pub struct LayerNorm {
    gamma: Param,
    beta: Param,
    eps: f32,
    cache: Option<LnCache>,
}

#[derive(Clone, Debug)]
struct LnCache {
    /// Normalised activations x̂ (pre-affine).
    normalized: Mat,
    /// Per-row 1/std.
    inv_std: Vec<f32>,
}

impl LayerNorm {
    /// A layer over `dim` channels with identity initialisation.
    pub fn new(dim: usize) -> Self {
        LayerNorm {
            gamma: Param::new(Mat::from_vec(1, dim, vec![1.0; dim])),
            beta: Param::new(Mat::zeros(1, dim)),
            eps: 1e-5,
            cache: None,
        }
    }
}

impl Layer for LayerNorm {
    fn forward(&mut self, x: &Mat) -> Mat {
        let dim = x.cols();
        let mut normalized = Mat::zeros(x.rows(), dim);
        let mut inv_std = Vec::with_capacity(x.rows());
        for r in 0..x.rows() {
            let row = x.row(r);
            let mean = row.iter().sum::<f32>() / dim as f32;
            let var = row.iter().map(|v| (v - mean).powi(2)).sum::<f32>() / dim as f32;
            let is = 1.0 / (var + self.eps).sqrt();
            inv_std.push(is);
            for (c, v) in row.iter().enumerate() {
                normalized.set(r, c, (v - mean) * is);
            }
        }
        let mut out = Mat::zeros(x.rows(), dim);
        for r in 0..x.rows() {
            for c in 0..dim {
                out.set(
                    r,
                    c,
                    normalized.get(r, c) * self.gamma.value.get(0, c) + self.beta.value.get(0, c),
                );
            }
        }
        self.cache = Some(LnCache {
            normalized,
            inv_std,
        });
        out
    }

    fn backward(&mut self, grad_out: &Mat) -> Mat {
        let cache = self.cache.as_ref().expect("forward before backward");
        let dim = grad_out.cols();
        let n = dim as f32;
        let mut dx = Mat::zeros(grad_out.rows(), dim);
        for r in 0..grad_out.rows() {
            // Accumulate parameter grads.
            for c in 0..dim {
                let g = grad_out.get(r, c);
                let gcur = self.gamma.grad.get(0, c) + g * cache.normalized.get(r, c);
                self.gamma.grad.set(0, c, gcur);
                let bcur = self.beta.grad.get(0, c) + g;
                self.beta.grad.set(0, c, bcur);
            }
            // dxhat = dy * gamma
            let dxhat: Vec<f32> = (0..dim)
                .map(|c| grad_out.get(r, c) * self.gamma.value.get(0, c))
                .collect();
            let sum_dxhat: f32 = dxhat.iter().sum();
            let sum_dxhat_xhat: f32 = dxhat
                .iter()
                .enumerate()
                .map(|(c, d)| d * cache.normalized.get(r, c))
                .sum();
            let is = cache.inv_std[r];
            for (c, &dh) in dxhat.iter().enumerate() {
                let xhat = cache.normalized.get(r, c);
                dx.set(r, c, is / n * (n * dh - sum_dxhat - xhat * sum_dxhat_xhat));
            }
        }
        dx
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.gamma, &mut self.beta]
    }
}

/// A stack of layers applied in order.
#[derive(Default)]
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl std::fmt::Debug for Sequential {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Sequential({} layers)", self.layers.len())
    }
}

impl Sequential {
    /// An empty stack.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a layer (builder style).
    pub fn push(mut self, layer: impl Layer + 'static) -> Self {
        self.layers.push(Box::new(layer));
        self
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the stack is empty.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }
}

impl Layer for Sequential {
    fn forward(&mut self, x: &Mat) -> Mat {
        let mut cur = x.clone();
        for layer in &mut self.layers {
            cur = layer.forward(&cur);
        }
        cur
    }

    fn backward(&mut self, grad_out: &Mat) -> Mat {
        let mut grad = grad_out.clone();
        for layer in self.layers.iter_mut().rev() {
            grad = layer.backward(&grad);
        }
        grad
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        self.layers
            .iter_mut()
            .flat_map(|l| l.params_mut())
            .collect()
    }
}

/// Numerical-vs-analytic gradient check utility (used across the crate's
/// tests; exposed for downstream model tests).
///
/// Returns the maximum relative error between the analytic input gradient
/// and a central-difference estimate for a scalar loss `L = sum(output)`.
///
/// Two measures make the check robust to the f32 forward pass:
///
/// * Probe losses accumulate in `f64`, so the difference quotient is not
///   dominated by `f32` summation error (the loss sums ~`O(10)` while the
///   perturbation moves it by ~`eps`).
/// * The relative error uses an absolute floor (`GRAD_ATOL_FLOOR`):
///   gradient entries below the finite-difference noise floor are compared
///   in absolute terms (PyTorch-gradcheck-style `atol`), because their
///   relative error is pure noise.
/// * Coordinates where the two one-sided differences disagree are skipped:
///   the perturbation crossed a ReLU kink, so no derivative exists there
///   and the central difference is meaningless. A wrong analytic gradient
///   cannot hide behind this filter — away from kinks the loss is smooth,
///   the one-sided slopes agree, and the coordinate is checked.
pub fn grad_check_input<L: Layer>(layer: &mut L, x: &Mat, eps: f32) -> f32 {
    // Analytic.
    let y = layer.forward(x);
    let ones = Mat::from_vec(y.rows(), y.cols(), vec![1.0; y.rows() * y.cols()]);
    let analytic = layer.backward(&ones);
    let l0 = loss(&layer.forward(x));
    // Numerical.
    let mut max_err = 0.0f32;
    for i in 0..x.rows() * x.cols() {
        let mut xp = x.clone();
        xp.data_mut()[i] += eps;
        let lp = loss(&layer.forward(&xp));
        let mut xm = x.clone();
        xm.data_mut()[i] -= eps;
        let lm = loss(&layer.forward(&xm));
        if crosses_kink(lp, l0, lm, eps) {
            continue;
        }
        let numeric = ((lp - lm) / (2.0 * eps as f64)) as f32;
        let a = analytic.data()[i];
        let denom = a.abs().max(numeric.abs()).max(GRAD_ATOL_FLOOR);
        max_err = max_err.max((a - numeric).abs() / denom);
    }
    max_err
}

/// Like [`grad_check_input`] but for one named parameter (index into
/// `params_mut()`), with loss `L = sum(output)`.
pub fn grad_check_param<L: Layer>(layer: &mut L, x: &Mat, param_idx: usize, eps: f32) -> f32 {
    layer.zero_grads();
    let y = layer.forward(x);
    let ones = Mat::from_vec(y.rows(), y.cols(), vec![1.0; y.rows() * y.cols()]);
    let _ = layer.backward(&ones);
    let analytic = layer.params_mut()[param_idx].grad.clone();
    let l0 = loss(&layer.forward(x));
    let n = analytic.rows() * analytic.cols();
    let mut max_err = 0.0f32;
    for i in 0..n {
        let orig = layer.params_mut()[param_idx].value.data()[i];
        layer.params_mut()[param_idx].value.data_mut()[i] = orig + eps;
        let lp = loss(&layer.forward(x));
        layer.params_mut()[param_idx].value.data_mut()[i] = orig - eps;
        let lm = loss(&layer.forward(x));
        layer.params_mut()[param_idx].value.data_mut()[i] = orig;
        if crosses_kink(lp, l0, lm, eps) {
            continue;
        }
        let numeric = ((lp - lm) / (2.0 * eps as f64)) as f32;
        let a = analytic.data()[i];
        let denom = a.abs().max(numeric.abs()).max(GRAD_ATOL_FLOOR);
        max_err = max_err.max((a - numeric).abs() / denom);
    }
    max_err
}

/// Gradient entries below this magnitude are compared in absolute rather
/// than relative terms: the `f32` forward pass puts a noise floor of about
/// `1e-4` on the difference quotient (per-output rounding ÷ `2·eps`), so
/// relative errors against smaller denominators measure nothing.
const GRAD_ATOL_FLOOR: f32 = 5e-2;

/// Scalar probe loss `L = sum(output)`, accumulated in `f64` so the sum
/// itself does not add `f32` cancellation error to the difference quotient.
fn loss(y: &Mat) -> f64 {
    y.data().iter().map(|&v| v as f64).sum()
}

/// Detects a non-smooth point between the two perturbed evaluations by
/// comparing the forward and backward one-sided difference quotients. On a
/// smooth loss they differ by `O(eps · L'')`; across a ReLU kink the slope
/// jumps by `O(1)`.
fn crosses_kink(lp: f64, l0: f64, lm: f64, eps: f32) -> bool {
    let eps = eps as f64;
    let d_plus = (lp - l0) / eps;
    let d_minus = (l0 - lm) / eps;
    let scale = d_plus.abs().max(d_minus.abs()).max(1.0);
    (d_plus - d_minus).abs() > 0.05 * scale
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    fn sample_input(rows: usize, cols: usize) -> Mat {
        let mut r = rng();
        Mat::from_vec(
            rows,
            cols,
            (0..rows * cols).map(|_| r.gen_range(-1.0..1.0)).collect(),
        )
    }

    #[test]
    fn linear_forward_shape_and_value() {
        let mut r = rng();
        let mut layer = Linear::new(3, 2, &mut r);
        let x = sample_input(4, 3);
        let y = layer.forward(&x);
        assert_eq!((y.rows(), y.cols()), (4, 2));
    }

    #[test]
    fn linear_grad_check() {
        let mut r = rng();
        let mut layer = Linear::new(3, 2, &mut r);
        let x = sample_input(4, 3);
        assert!(grad_check_input(&mut layer, &x, 1e-3) < 0.01);
        assert!(grad_check_param(&mut layer, &x, 0, 1e-3) < 0.01); // W
        assert!(grad_check_param(&mut layer, &x, 1, 1e-3) < 0.01); // b
    }

    #[test]
    fn relu_grad_check() {
        let mut layer = Relu::new();
        let x = sample_input(5, 3);
        assert!(grad_check_input(&mut layer, &x, 1e-3) < 0.01);
    }

    #[test]
    fn tanh_grad_check() {
        let mut layer = Tanh::new();
        let x = sample_input(5, 3);
        assert!(grad_check_input(&mut layer, &x, 1e-3) < 0.01);
    }

    #[test]
    fn layernorm_normalizes_rows() {
        let mut ln = LayerNorm::new(4);
        let x = Mat::from_vec(2, 4, vec![1.0, 2.0, 3.0, 4.0, -2.0, 0.0, 2.0, 8.0]);
        let y = ln.forward(&x);
        for r in 0..2 {
            let mean: f32 = y.row(r).iter().sum::<f32>() / 4.0;
            let var: f32 = y.row(r).iter().map(|v| (v - mean).powi(2)).sum::<f32>() / 4.0;
            assert!(mean.abs() < 1e-5, "row {r} mean {mean}");
            assert!((var - 1.0).abs() < 1e-3, "row {r} var {var}");
        }
    }

    #[test]
    fn layernorm_grad_check() {
        let mut ln = LayerNorm::new(5);
        // Perturb affine params away from identity so their grads are
        // exercised non-trivially.
        let mut r = rng();
        ln.params_mut()[0].value = Mat::xavier(1, 5, &mut r).map(|v| 1.0 + v);
        ln.params_mut()[1].value = Mat::xavier(1, 5, &mut r);
        let x = sample_input(4, 5);
        // Normalisation cancels most of a uniform perturbation, so some
        // true input gradients are near zero and the generic *relative*
        // check is meaningless there; compare absolutely instead.
        let y = ln.forward(&x);
        let ones = Mat::from_vec(y.rows(), y.cols(), vec![1.0; y.rows() * y.cols()]);
        let analytic = ln.backward(&ones);
        let eps = 1e-3f32;
        for i in 0..x.rows() * x.cols() {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let lp: f32 = ln.forward(&xp).data().iter().sum();
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let lm: f32 = ln.forward(&xm).data().iter().sum();
            let numeric = (lp - lm) / (2.0 * eps);
            let a = analytic.data()[i];
            assert!(
                (a - numeric).abs() < 2e-2 * a.abs().max(1.0),
                "element {i}: analytic {a} vs numeric {numeric}"
            );
        }
        assert!(grad_check_param(&mut ln, &x, 0, 1e-2) < 0.02); // gamma
        assert!(grad_check_param(&mut ln, &x, 1, 1e-2) < 0.02); // beta
    }

    #[test]
    fn sequential_grad_check() {
        let mut r = rng();
        let mut model = Sequential::new()
            .push(Linear::new(3, 8, &mut r))
            .push(Relu::new())
            .push(Linear::new(8, 2, &mut r))
            .push(Tanh::new());
        let x = sample_input(4, 3);
        assert!(grad_check_input(&mut model, &x, 1e-3) < 0.02);
    }

    #[test]
    fn zero_grads_clears() {
        let mut r = rng();
        let mut layer = Linear::new(3, 2, &mut r);
        let x = sample_input(4, 3);
        let y = layer.forward(&x);
        let ones = Mat::from_vec(4, 2, vec![1.0; 8]);
        let _ = layer.backward(&ones);
        assert!(layer.params_mut()[0].grad.norm() > 0.0);
        layer.zero_grads();
        assert_eq!(layer.params_mut()[0].grad.norm(), 0.0);
        let _ = y;
    }

    #[test]
    fn param_count() {
        let mut r = rng();
        let mut layer = Linear::new(3, 2, &mut r);
        assert_eq!(layer.param_count(), 3 * 2 + 2);
    }

    #[test]
    fn gradients_accumulate_across_backwards() {
        let mut r = rng();
        let mut layer = Linear::new(2, 2, &mut r);
        let x = sample_input(3, 2);
        let ones = Mat::from_vec(3, 2, vec![1.0; 6]);
        layer.forward(&x);
        layer.backward(&ones);
        let g1 = layer.params_mut()[0].grad.clone();
        layer.forward(&x);
        layer.backward(&ones);
        let g2 = layer.params_mut()[0].grad.clone();
        assert!((g2.norm() - 2.0 * g1.norm()).abs() < 1e-4);
    }
}
