//! Causal dilated 1-D convolution and the residual TCN block (paper Eq. 3).
//!
//! Causal convolution only looks backwards in time (`x_{t - k·d}`), and
//! dilation `d` widens the receptive field exponentially with depth —
//! exactly the construction the paper adopts from Bai et al. for
//! long-range dependency capture.

use rand::Rng;

use crate::layer::{Layer, Linear, Param, Relu};
use crate::mat::Mat;

/// A causal, dilated 1-D convolution over a `T × C_in` sequence,
/// producing `T × C_out`.
///
/// Implemented with an im2row transform: each output row `t` sees the
/// concatenation `[x_{t}, x_{t-d}, ..., x_{t-(k-1)d}]` (zero-padded before
/// the sequence start), so the convolution becomes one matrix product.
#[derive(Clone, Debug)]
pub struct CausalConv1d {
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    dilation: usize,
    /// Weight as a `(kernel * in_channels) × out_channels` matrix.
    w: Param,
    b: Param,
    cached_im2row: Option<Mat>,
    cached_t: usize,
}

impl CausalConv1d {
    /// Creates a convolution layer.
    ///
    /// # Panics
    ///
    /// Panics when `kernel` or `dilation` is zero.
    pub fn new<R: Rng + ?Sized>(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        dilation: usize,
        rng: &mut R,
    ) -> Self {
        assert!(
            kernel > 0 && dilation > 0,
            "kernel and dilation must be positive"
        );
        CausalConv1d {
            in_channels,
            out_channels,
            kernel,
            dilation,
            w: Param::new(Mat::xavier(kernel * in_channels, out_channels, rng)),
            b: Param::new(Mat::zeros(1, out_channels)),
            cached_im2row: None,
            cached_t: 0,
        }
    }

    /// The receptive field in time steps: `(kernel - 1) * dilation + 1`.
    pub fn receptive_field(&self) -> usize {
        (self.kernel - 1) * self.dilation + 1
    }

    /// Input channel count.
    pub fn in_channels(&self) -> usize {
        self.in_channels
    }

    /// Output channel count.
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    fn im2row(&self, x: &Mat) -> Mat {
        let t_len = x.rows();
        let mut out = Mat::zeros(t_len, self.kernel * self.in_channels);
        for t in 0..t_len {
            for kk in 0..self.kernel {
                let offset = kk * self.dilation;
                if t >= offset {
                    let src = x.row(t - offset);
                    let dst =
                        &mut out.row_mut(t)[kk * self.in_channels..(kk + 1) * self.in_channels];
                    dst.copy_from_slice(src);
                }
            }
        }
        out
    }
}

impl Layer for CausalConv1d {
    fn forward(&mut self, x: &Mat) -> Mat {
        assert_eq!(x.cols(), self.in_channels, "channel mismatch");
        let im = self.im2row(x);
        self.cached_t = x.rows();
        let y = im.matmul(&self.w.value).add_row_broadcast(&self.b.value);
        self.cached_im2row = Some(im);
        y
    }

    fn backward(&mut self, grad_out: &Mat) -> Mat {
        let im = self
            .cached_im2row
            .as_ref()
            .expect("forward before backward");
        self.w.grad.add_assign(&im.transpose().matmul(grad_out));
        self.b.grad.add_assign(&grad_out.sum_rows());
        // d im2row, then scatter back onto the input timeline.
        let d_im = grad_out.matmul(&self.w.value.transpose());
        let t_len = self.cached_t;
        let mut dx = Mat::zeros(t_len, self.in_channels);
        for t in 0..t_len {
            for kk in 0..self.kernel {
                let offset = kk * self.dilation;
                if t >= offset {
                    let src = &d_im.row(t)[kk * self.in_channels..(kk + 1) * self.in_channels];
                    let dst = dx.row_mut(t - offset);
                    for (d, s) in dst.iter_mut().zip(src) {
                        *d += s;
                    }
                }
            }
        }
        dx
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.w, &mut self.b]
    }
}

/// A residual TCN block: two causal dilated convolutions with ReLU, plus a
/// (projected) skip connection:
///
/// `y = ReLU( conv2(ReLU(conv1(x))) + proj(x) )`
#[derive(Debug)]
pub struct TcnBlock {
    conv1: CausalConv1d,
    relu1: Relu,
    conv2: CausalConv1d,
    /// 1×1 projection when channel counts differ; identity otherwise.
    proj: Option<Linear>,
    relu_out: Relu,
}

impl TcnBlock {
    /// Builds a block with the given channel widths, kernel, and dilation.
    pub fn new<R: Rng + ?Sized>(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        dilation: usize,
        rng: &mut R,
    ) -> Self {
        TcnBlock {
            conv1: CausalConv1d::new(in_channels, out_channels, kernel, dilation, rng),
            relu1: Relu::new(),
            conv2: CausalConv1d::new(out_channels, out_channels, kernel, dilation, rng),
            proj: if in_channels != out_channels {
                Some(Linear::new(in_channels, out_channels, rng))
            } else {
                None
            },
            relu_out: Relu::new(),
        }
    }

    /// The block's receptive field.
    pub fn receptive_field(&self) -> usize {
        self.conv1.receptive_field() + self.conv2.receptive_field() - 1
    }
}

impl Layer for TcnBlock {
    fn forward(&mut self, x: &Mat) -> Mat {
        let a = self.conv1.forward(x);
        let a = self.relu1.forward(&a);
        let main = self.conv2.forward(&a);
        let skip = match &mut self.proj {
            Some(p) => p.forward(x),
            None => x.clone(),
        };
        self.relu_out.forward(&main.add(&skip))
    }

    fn backward(&mut self, grad_out: &Mat) -> Mat {
        let d_sum = self.relu_out.backward(grad_out);
        // Main branch.
        let d_a = self.conv2.backward(&d_sum);
        let d_a = self.relu1.backward(&d_a);
        let dx_main = self.conv1.backward(&d_a);
        // Skip branch.
        let dx_skip = match &mut self.proj {
            Some(p) => p.backward(&d_sum),
            None => d_sum,
        };
        dx_main.add(&dx_skip)
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut params = self.conv1.params_mut();
        params.extend(self.conv2.params_mut());
        if let Some(p) = &mut self.proj {
            params.extend(p.params_mut());
        }
        params
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{grad_check_input, grad_check_param};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    fn input(t: usize, c: usize) -> Mat {
        let mut r = rng();
        Mat::from_vec(t, c, (0..t * c).map(|_| r.gen_range(-1.0..1.0)).collect())
    }

    #[test]
    fn conv_shapes() {
        let mut r = rng();
        let mut conv = CausalConv1d::new(3, 5, 2, 1, &mut r);
        let y = conv.forward(&input(10, 3));
        assert_eq!((y.rows(), y.cols()), (10, 5));
    }

    #[test]
    fn conv_is_causal() {
        // Changing a future input must not change past outputs.
        let mut r = rng();
        let mut conv = CausalConv1d::new(1, 1, 3, 2, &mut r);
        let x1 = input(10, 1);
        let mut x2 = x1.clone();
        x2.set(9, 0, 99.0);
        let y1 = conv.forward(&x1);
        let y2 = conv.forward(&x2);
        for t in 0..9 {
            assert_eq!(y1.get(t, 0), y2.get(t, 0), "leak at t={t}");
        }
        assert_ne!(y1.get(9, 0), y2.get(9, 0));
    }

    #[test]
    fn conv_receptive_field() {
        let mut r = rng();
        let conv = CausalConv1d::new(1, 1, 3, 4, &mut r);
        assert_eq!(conv.receptive_field(), 9);
    }

    #[test]
    fn dilation_one_is_regular_convolution() {
        // k=2, d=1: y_t = w0 x_t + w1 x_{t-1} + b. Check directly.
        let mut r = rng();
        let mut conv = CausalConv1d::new(1, 1, 2, 1, &mut r);
        // Overwrite weights with known values.
        conv.w.value = Mat::from_vec(2, 1, vec![2.0, 3.0]);
        conv.b.value = Mat::from_vec(1, 1, vec![0.5]);
        let x = Mat::from_vec(3, 1, vec![1.0, 10.0, 100.0]);
        let y = conv.forward(&x);
        assert_eq!(y.data(), &[2.5, 23.5, 230.5]);
    }

    #[test]
    fn conv_grad_check() {
        let mut r = rng();
        let mut conv = CausalConv1d::new(2, 3, 3, 2, &mut r);
        let x = input(8, 2);
        assert!(grad_check_input(&mut conv, &x, 1e-3) < 0.01);
        assert!(grad_check_param(&mut conv, &x, 0, 1e-3) < 0.01);
        assert!(grad_check_param(&mut conv, &x, 1, 1e-3) < 0.01);
    }

    #[test]
    fn tcn_block_shapes_and_projection() {
        let mut r = rng();
        let mut block = TcnBlock::new(2, 6, 2, 1, &mut r);
        let y = block.forward(&input(12, 2));
        assert_eq!((y.rows(), y.cols()), (12, 6));
        // With matching channels no projection exists.
        let mut same = TcnBlock::new(4, 4, 2, 1, &mut r);
        assert_eq!(same.params_mut().len(), 4);
        let mut diff = TcnBlock::new(2, 6, 2, 1, &mut r);
        assert_eq!(diff.params_mut().len(), 6);
    }

    #[test]
    fn tcn_block_grad_check() {
        let mut r = rng();
        let mut block = TcnBlock::new(2, 4, 2, 2, &mut r);
        let x = input(8, 2);
        assert!(grad_check_input(&mut block, &x, 1e-3) < 0.02);
        for p in 0..6 {
            assert!(
                grad_check_param(&mut block, &x, p, 1e-3) < 0.02,
                "param {p}"
            );
        }
    }

    #[test]
    fn tcn_block_receptive_field() {
        let mut r = rng();
        let block = TcnBlock::new(1, 1, 3, 2, &mut r);
        // Each conv: (3-1)*2+1 = 5; block: 5 + 5 - 1 = 9.
        assert_eq!(block.receptive_field(), 9);
    }

    #[test]
    #[should_panic(expected = "kernel and dilation must be positive")]
    fn zero_kernel_panics() {
        let mut r = rng();
        let _ = CausalConv1d::new(1, 1, 0, 1, &mut r);
    }
}
