//! Optimizers: SGD and Adam.

use crate::layer::Param;
use crate::mat::Mat;

/// Plain stochastic gradient descent.
#[derive(Clone, Copy, Debug)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
}

impl Sgd {
    /// Creates SGD with the given learning rate.
    pub fn new(lr: f32) -> Self {
        Sgd { lr }
    }

    /// Applies one update to every parameter, consuming the gradients.
    pub fn step(&self, params: Vec<&mut Param>) {
        for p in params {
            let update = p.grad.scale(self.lr);
            p.value = p.value.sub(&update);
            p.zero_grad();
        }
    }
}

/// Adam (Kingma & Ba) with bias correction.
#[derive(Debug)]
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical stabilizer.
    pub eps: f32,
    /// Optional gradient-norm clipping (per tensor).
    pub clip: Option<f32>,
    t: u64,
    m: Vec<Mat>,
    v: Vec<Mat>,
}

impl Adam {
    /// Adam with the standard hyperparameters and the given learning rate.
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            clip: Some(5.0),
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Applies one Adam update. The parameter list must be in the same
    /// order every step (moment state is positional).
    pub fn step(&mut self, params: Vec<&mut Param>) {
        if self.m.is_empty() {
            for p in &params {
                self.m.push(Mat::zeros(p.value.rows(), p.value.cols()));
                self.v.push(Mat::zeros(p.value.rows(), p.value.cols()));
            }
        }
        assert_eq!(
            params.len(),
            self.m.len(),
            "parameter list changed between steps"
        );
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (i, p) in params.into_iter().enumerate() {
            let mut grad = p.grad.clone();
            if let Some(clip) = self.clip {
                let norm = grad.norm();
                if norm > clip {
                    grad = grad.scale(clip / norm);
                }
            }
            for j in 0..grad.data().len() {
                let g = grad.data()[j];
                let m = self.beta1 * self.m[i].data()[j] + (1.0 - self.beta1) * g;
                let v = self.beta2 * self.v[i].data()[j] + (1.0 - self.beta2) * g * g;
                self.m[i].data_mut()[j] = m;
                self.v[i].data_mut()[j] = v;
                let m_hat = m / bc1;
                let v_hat = v / bc2;
                p.value.data_mut()[j] -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
            }
            p.zero_grad();
        }
    }

    /// Steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{Layer, Linear};
    use crate::loss::mse_loss;
    use crate::mat::Mat;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Train y = 2x - 1 with a single linear layer.
    fn train_linear(optimizer_is_adam: bool) -> f32 {
        let mut rng = StdRng::seed_from_u64(5);
        let mut model = Linear::new(1, 1, &mut rng);
        let xs = Mat::from_vec(8, 1, (0..8).map(|i| i as f32 / 4.0).collect());
        let ys = xs.map(|v| 2.0 * v - 1.0);
        let mut adam = Adam::new(0.05);
        let sgd = Sgd::new(0.1);
        let mut last = f32::MAX;
        for _ in 0..500 {
            let pred = model.forward(&xs);
            let (loss, grad) = mse_loss(&pred, &ys);
            last = loss;
            model.backward(&grad);
            if optimizer_is_adam {
                adam.step(model.params_mut());
            } else {
                sgd.step(model.params_mut());
            }
        }
        last
    }

    #[test]
    fn sgd_fits_line() {
        assert!(train_linear(false) < 1e-3);
    }

    #[test]
    fn adam_fits_line() {
        assert!(train_linear(true) < 1e-3);
    }

    #[test]
    fn adam_clips_huge_gradients() {
        let mut adam = Adam::new(0.1);
        let mut p = Param::new(Mat::zeros(1, 1));
        p.grad = Mat::from_vec(1, 1, vec![1e9]);
        adam.step(vec![&mut p]);
        // Clipped + Adam normalisation: update magnitude ~= lr.
        assert!(p.value.data()[0].abs() < 1.0);
        assert!(p.value.data()[0] != 0.0);
    }

    #[test]
    fn adam_zeroes_grads_after_step() {
        let mut adam = Adam::new(0.01);
        let mut p = Param::new(Mat::zeros(2, 2));
        p.grad = Mat::from_vec(2, 2, vec![1.0; 4]);
        adam.step(vec![&mut p]);
        assert_eq!(p.grad.norm(), 0.0);
        assert_eq!(adam.steps(), 1);
    }

    #[test]
    #[should_panic(expected = "parameter list changed")]
    fn adam_detects_param_list_change() {
        let mut adam = Adam::new(0.01);
        let mut p1 = Param::new(Mat::zeros(1, 1));
        adam.step(vec![&mut p1]);
        let mut p2 = Param::new(Mat::zeros(1, 1));
        adam.step(vec![&mut p1, &mut p2]);
    }
}
