//! A from-scratch neural-network library for Hammer's workload-prediction
//! model (paper §IV).
//!
//! The paper's learning-based control-sequence model is a
//! **TCN → BiGRU → multi-head attention** stack trained with MAE loss and
//! compared against Linear, RNN, TCN-only, and Transformer baselines
//! (Table III). No ML framework is available as a dependency, so this
//! crate implements the required pieces directly:
//!
//! * [`mat`] — a dense row-major `f32` matrix with the linear algebra the
//!   layers need. Sequences are `T × C` matrices (time × channels).
//! * [`layer`] — the [`layer::Layer`] trait (explicit forward/backward),
//!   dense layers, activations, and [`layer::Sequential`] composition.
//! * [`conv`] — causal dilated 1-D convolution and the residual TCN block
//!   of Bai et al. (the paper's long-range component).
//! * [`rnn`] — vanilla RNN, GRU (paper Eq. 4) and BiGRU (paper Eq. 5).
//! * [`attention`] — multi-head self-attention (paper Eq. 6–7).
//! * [`loss`] — MAE (paper Eq. 8) and MSE with gradients.
//! * [`optim`] — SGD and Adam.
//!
//! Every layer's backward pass is verified against numerical
//! differentiation in the test suite.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod attention;
pub mod conv;
pub mod layer;
pub mod loss;
pub mod mat;
pub mod optim;
pub mod rnn;

pub use attention::MultiHeadAttention;
pub use conv::{CausalConv1d, TcnBlock};
pub use layer::{Layer, LayerNorm, Linear, Param, Relu, Sequential, Tanh};
pub use loss::{mae_loss, mse_loss};
pub use mat::Mat;
pub use optim::{Adam, Sgd};
pub use rnn::{BiGru, Gru, VanillaRnn};
