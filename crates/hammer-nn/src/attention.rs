//! Multi-head self-attention (paper Eq. 6–7).
//!
//! `Attention(Q, K, V) = softmax(QKᵀ / √d_k) V`, with `h` heads computed
//! in parallel subspaces and concatenated through an output projection
//! `W_O`. (The paper's Eq. 6 omits the `V` product — a typo; the standard
//! formulation is implemented.) The paper uses this stage to catch sudden
//! bursts: attention lets any time step look directly at any other.

use rand::Rng;

use crate::layer::{Layer, Param};
use crate::mat::Mat;

/// Multi-head self-attention over a `T × D` sequence.
#[derive(Clone, Debug)]
pub struct MultiHeadAttention {
    wq: Param,
    wk: Param,
    wv: Param,
    wo: Param,
    heads: usize,
    dim: usize,
    cache: Option<Cache>,
}

#[derive(Clone, Debug)]
struct Cache {
    x: Mat,
    q: Mat,
    k: Mat,
    v: Mat,
    /// Per-head attention weights (post-softmax), each `T × T`.
    attn: Vec<Mat>,
    /// Concatenated head outputs, `T × D`.
    concat: Mat,
}

fn softmax_rows(m: &Mat) -> Mat {
    let mut out = Mat::zeros(m.rows(), m.cols());
    for r in 0..m.rows() {
        let row = m.row(r);
        let max = row.iter().copied().fold(f32::MIN, f32::max);
        let exps: Vec<f32> = row.iter().map(|v| (v - max).exp()).collect();
        let sum: f32 = exps.iter().sum();
        for (c, e) in exps.iter().enumerate() {
            out.set(r, c, e / sum);
        }
    }
    out
}

impl MultiHeadAttention {
    /// Creates an attention layer over `dim` channels with `heads` heads.
    ///
    /// # Panics
    ///
    /// Panics when `dim` is not divisible by `heads`.
    pub fn new<R: Rng + ?Sized>(dim: usize, heads: usize, rng: &mut R) -> Self {
        assert!(heads > 0, "need at least one head");
        assert_eq!(dim % heads, 0, "dim must be divisible by heads");
        MultiHeadAttention {
            wq: Param::new(Mat::xavier(dim, dim, rng)),
            wk: Param::new(Mat::xavier(dim, dim, rng)),
            wv: Param::new(Mat::xavier(dim, dim, rng)),
            wo: Param::new(Mat::xavier(dim, dim, rng)),
            heads,
            dim,
            cache: None,
        }
    }

    /// Number of heads.
    pub fn heads(&self) -> usize {
        self.heads
    }

    fn head_dim(&self) -> usize {
        self.dim / self.heads
    }
}

impl Layer for MultiHeadAttention {
    fn forward(&mut self, x: &Mat) -> Mat {
        assert_eq!(x.cols(), self.dim, "channel mismatch");
        let q = x.matmul(&self.wq.value);
        let k = x.matmul(&self.wk.value);
        let v = x.matmul(&self.wv.value);
        let dk = self.head_dim();
        let scale = 1.0 / (dk as f32).sqrt();
        let t_len = x.rows();
        let mut concat = Mat::zeros(t_len, self.dim);
        let mut attn_all = Vec::with_capacity(self.heads);
        for h in 0..self.heads {
            let c0 = h * dk;
            let c1 = c0 + dk;
            let qh = q.col_slice(c0, c1);
            let kh = k.col_slice(c0, c1);
            let vh = v.col_slice(c0, c1);
            let scores = qh.matmul(&kh.transpose()).scale(scale);
            let attn = softmax_rows(&scores);
            let yh = attn.matmul(&vh);
            for t in 0..t_len {
                concat.row_mut(t)[c0..c1].copy_from_slice(yh.row(t));
            }
            attn_all.push(attn);
        }
        let out = concat.matmul(&self.wo.value);
        self.cache = Some(Cache {
            x: x.clone(),
            q,
            k,
            v,
            attn: attn_all,
            concat,
        });
        out
    }

    fn backward(&mut self, grad_out: &Mat) -> Mat {
        let cache = self.cache.as_ref().expect("forward before backward");
        let dk = self.head_dim();
        let scale = 1.0 / (dk as f32).sqrt();
        let t_len = cache.x.rows();

        // out = concat · W_O
        self.wo
            .grad
            .add_assign(&cache.concat.transpose().matmul(grad_out));
        let d_concat = grad_out.matmul(&self.wo.value.transpose());

        let mut dq = Mat::zeros(t_len, self.dim);
        let mut dkm = Mat::zeros(t_len, self.dim);
        let mut dv = Mat::zeros(t_len, self.dim);
        for h in 0..self.heads {
            let c0 = h * dk;
            let c1 = c0 + dk;
            let d_yh = d_concat.col_slice(c0, c1);
            let attn = &cache.attn[h];
            let qh = cache.q.col_slice(c0, c1);
            let kh = cache.k.col_slice(c0, c1);
            let vh = cache.v.col_slice(c0, c1);

            // yh = attn · vh
            let d_attn = d_yh.matmul(&vh.transpose());
            let d_vh = attn.transpose().matmul(&d_yh);

            // softmax backward per row: dS = (dA - sum(dA ⊙ A)) ⊙ A
            let mut d_scores = Mat::zeros(t_len, t_len);
            for r in 0..t_len {
                let a_row = attn.row(r);
                let da_row = d_attn.row(r);
                let dot: f32 = a_row.iter().zip(da_row).map(|(a, d)| a * d).sum();
                for c in 0..t_len {
                    d_scores.set(r, c, (da_row[c] - dot) * a_row[c]);
                }
            }
            let d_scores = d_scores.scale(scale);

            // scores = qh · khᵀ
            let d_qh = d_scores.matmul(&kh);
            let d_kh = d_scores.transpose().matmul(&qh);

            for t in 0..t_len {
                dq.row_mut(t)[c0..c1].copy_from_slice(d_qh.row(t));
                dkm.row_mut(t)[c0..c1].copy_from_slice(d_kh.row(t));
                dv.row_mut(t)[c0..c1].copy_from_slice(d_vh.row(t));
            }
        }

        // q = x W_q etc.
        self.wq.grad.add_assign(&cache.x.transpose().matmul(&dq));
        self.wk.grad.add_assign(&cache.x.transpose().matmul(&dkm));
        self.wv.grad.add_assign(&cache.x.transpose().matmul(&dv));
        dq.matmul(&self.wq.value.transpose())
            .add(&dkm.matmul(&self.wk.value.transpose()))
            .add(&dv.matmul(&self.wv.value.transpose()))
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.wq, &mut self.wk, &mut self.wv, &mut self.wo]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{grad_check_input, grad_check_param};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(23)
    }

    fn input(t: usize, c: usize) -> Mat {
        let mut r = rng();
        Mat::from_vec(t, c, (0..t * c).map(|_| r.gen_range(-1.0..1.0)).collect())
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let m = Mat::from_vec(2, 3, vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0]);
        let s = softmax_rows(&m);
        for r in 0..2 {
            let sum: f32 = s.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
        }
        // Larger logits get larger probabilities.
        assert!(s.get(0, 2) > s.get(0, 0));
    }

    #[test]
    fn softmax_is_stable_for_large_logits() {
        let m = Mat::from_vec(1, 2, vec![1000.0, 1001.0]);
        let s = softmax_rows(&m);
        assert!(s.data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn attention_shapes() {
        let mut r = rng();
        let mut attn = MultiHeadAttention::new(8, 2, &mut r);
        let y = attn.forward(&input(5, 8));
        assert_eq!((y.rows(), y.cols()), (5, 8));
    }

    #[test]
    fn attention_mixes_time_steps() {
        // Output at t=0 must depend on input at t=4 (global receptive
        // field — how the model catches bursts).
        let mut r = rng();
        let mut attn = MultiHeadAttention::new(4, 1, &mut r);
        let x1 = input(5, 4);
        let mut x2 = x1.clone();
        x2.set(4, 0, 9.0);
        let y1 = attn.forward(&x1);
        let y2 = attn.forward(&x2);
        assert_ne!(y1.row(0), y2.row(0));
    }

    #[test]
    fn attention_grad_check_input() {
        let mut r = rng();
        let mut attn = MultiHeadAttention::new(4, 2, &mut r);
        let x = input(4, 4);
        assert!(grad_check_input(&mut attn, &x, 1e-3) < 0.03);
    }

    #[test]
    fn attention_grad_check_params() {
        let mut r = rng();
        let mut attn = MultiHeadAttention::new(4, 2, &mut r);
        let x = input(4, 4);
        for p in 0..4 {
            // Softmax gradients are small relative to the f32 loss sum, so
            // finite differences need a larger eps and a looser bound.
            assert!(grad_check_param(&mut attn, &x, p, 3e-2) < 0.1, "param {p}");
        }
    }

    #[test]
    #[should_panic(expected = "dim must be divisible by heads")]
    fn indivisible_heads_panics() {
        let mut r = rng();
        let _ = MultiHeadAttention::new(7, 2, &mut r);
    }

    #[test]
    fn single_head_equals_heads_partition() {
        // With identical weights across the head split this doesn't hold
        // in general; just verify both configurations run and produce
        // finite outputs.
        let mut r = rng();
        for heads in [1, 2, 4] {
            let mut attn = MultiHeadAttention::new(8, heads, &mut r);
            let y = attn.forward(&input(6, 8));
            assert!(y.data().iter().all(|v| v.is_finite()), "heads={heads}");
        }
    }
}
