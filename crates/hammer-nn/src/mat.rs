//! A dense row-major `f32` matrix.
//!
//! Sequences are `T × C` matrices: row `t` is the channel vector at time
//! step `t`.

use rand::Rng;

/// A dense matrix.
#[derive(Clone, Debug, PartialEq)]
pub struct Mat {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Mat {
    /// A `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Mat {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Builds from a row-major data vector.
    ///
    /// # Panics
    ///
    /// Panics when `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length mismatch");
        Mat { rows, cols, data }
    }

    /// A column vector from a slice.
    pub fn column(values: &[f32]) -> Self {
        Mat::from_vec(values.len(), 1, values.to_vec())
    }

    /// Xavier/Glorot-uniform initialisation for a `rows × cols` weight.
    pub fn xavier<R: Rng + ?Sized>(rows: usize, cols: usize, rng: &mut R) -> Self {
        let bound = (6.0 / (rows + cols) as f32).sqrt();
        let data = (0..rows * cols)
            .map(|_| rng.gen_range(-bound..bound))
            .collect();
        Mat { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The raw row-major data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable raw data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element access.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element assignment.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Row `r` as a slice.
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable row `r`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix product `self · other`.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, other: &Mat) -> Mat {
        assert_eq!(
            self.cols, other.rows,
            "matmul dimension mismatch: {}x{} · {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Mat::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(i, k);
                if a == 0.0 {
                    continue;
                }
                let out_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
                let b_row = &other.data[k * other.cols..(k + 1) * other.cols];
                for (o, b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Transpose.
    pub fn transpose(&self) -> Mat {
        let mut out = Mat::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(c, r, self.get(r, c));
            }
        }
        out
    }

    /// Elementwise sum (same shape).
    pub fn add(&self, other: &Mat) -> Mat {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a + b)
            .collect();
        Mat {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Elementwise difference (same shape).
    pub fn sub(&self, other: &Mat) -> Mat {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a - b)
            .collect();
        Mat {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Elementwise (Hadamard) product.
    pub fn hadamard(&self, other: &Mat) -> Mat {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a * b)
            .collect();
        Mat {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Adds `other` in place.
    pub fn add_assign(&mut self, other: &Mat) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Multiplies every element by a scalar.
    pub fn scale(&self, k: f32) -> Mat {
        let data = self.data.iter().map(|a| a * k).collect();
        Mat {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Applies `f` elementwise.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Mat {
        let data = self.data.iter().map(|a| f(*a)).collect();
        Mat {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Adds a row vector (`1 × cols`) to every row.
    pub fn add_row_broadcast(&self, bias: &Mat) -> Mat {
        assert_eq!(bias.rows, 1);
        assert_eq!(bias.cols, self.cols);
        let mut out = self.clone();
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[r * self.cols + c] += bias.data[c];
            }
        }
        out
    }

    /// Sums all rows into a `1 × cols` vector (bias-gradient reduction).
    pub fn sum_rows(&self) -> Mat {
        let mut out = Mat::zeros(1, self.cols);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c] += self.get(r, c);
            }
        }
        out
    }

    /// Horizontal concatenation `[self | other]`.
    pub fn hcat(&self, other: &Mat) -> Mat {
        assert_eq!(self.rows, other.rows);
        let cols = self.cols + other.cols;
        let mut out = Mat::zeros(self.rows, cols);
        for r in 0..self.rows {
            out.row_mut(r)[..self.cols].copy_from_slice(self.row(r));
            out.row_mut(r)[self.cols..].copy_from_slice(other.row(r));
        }
        out
    }

    /// Column slice `[c0, c1)` as a new matrix.
    pub fn col_slice(&self, c0: usize, c1: usize) -> Mat {
        assert!(c0 <= c1 && c1 <= self.cols);
        let mut out = Mat::zeros(self.rows, c1 - c0);
        for r in 0..self.rows {
            out.row_mut(r).copy_from_slice(&self.row(r)[c0..c1]);
        }
        out
    }

    /// Reverses the row order (time reversal for the backward GRU).
    pub fn reverse_rows(&self) -> Mat {
        let mut out = Mat::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            out.row_mut(self.rows - 1 - r).copy_from_slice(self.row(r));
        }
        out
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|a| a * a).sum::<f32>().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn matmul_known_product() {
        let a = Mat::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Mat::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c, Mat::from_vec(2, 2, vec![58.0, 64.0, 139.0, 154.0]));
    }

    #[test]
    fn matmul_identity() {
        let mut identity = Mat::zeros(3, 3);
        for i in 0..3 {
            identity.set(i, i, 1.0);
        }
        let a = Mat::from_vec(3, 3, (1..=9).map(|v| v as f32).collect());
        assert_eq!(a.matmul(&identity), a);
    }

    #[test]
    #[should_panic(expected = "matmul dimension mismatch")]
    fn matmul_bad_dims() {
        let a = Mat::zeros(2, 3);
        let b = Mat::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Mat::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().get(2, 1), 6.0);
    }

    #[test]
    fn elementwise_ops() {
        let a = Mat::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        let b = Mat::from_vec(1, 3, vec![4.0, 5.0, 6.0]);
        assert_eq!(a.add(&b).data(), &[5.0, 7.0, 9.0]);
        assert_eq!(b.sub(&a).data(), &[3.0, 3.0, 3.0]);
        assert_eq!(a.hadamard(&b).data(), &[4.0, 10.0, 18.0]);
        assert_eq!(a.scale(2.0).data(), &[2.0, 4.0, 6.0]);
        assert_eq!(a.map(|v| v * v).data(), &[1.0, 4.0, 9.0]);
    }

    #[test]
    fn broadcast_and_reduce() {
        let x = Mat::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let bias = Mat::from_vec(1, 2, vec![10.0, 20.0]);
        assert_eq!(x.add_row_broadcast(&bias).data(), &[11.0, 22.0, 13.0, 24.0]);
        assert_eq!(x.sum_rows().data(), &[4.0, 6.0]);
    }

    #[test]
    fn hcat_and_slice_invert() {
        let a = Mat::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = Mat::from_vec(2, 1, vec![5.0, 6.0]);
        let cat = a.hcat(&b);
        assert_eq!(cat.cols(), 3);
        assert_eq!(cat.col_slice(0, 2), a);
        assert_eq!(cat.col_slice(2, 3), b);
    }

    #[test]
    fn reverse_rows_involution() {
        let a = Mat::from_vec(3, 1, vec![1.0, 2.0, 3.0]);
        assert_eq!(a.reverse_rows().data(), &[3.0, 2.0, 1.0]);
        assert_eq!(a.reverse_rows().reverse_rows(), a);
    }

    #[test]
    fn xavier_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let w = Mat::xavier(64, 32, &mut rng);
        let bound = (6.0 / 96.0f32).sqrt();
        assert!(w.data().iter().all(|v| v.abs() <= bound));
        assert!(w.norm() > 0.0);
    }

    #[test]
    #[should_panic(expected = "data length mismatch")]
    fn from_vec_checks_len() {
        let _ = Mat::from_vec(2, 2, vec![1.0]);
    }
}
