//! Recurrent layers: vanilla RNN, GRU (paper Eq. 4), and BiGRU (Eq. 5).
//!
//! All layers map a `T × I` input sequence to a `T × H` (or `T × 2H` for
//! BiGRU) output sequence and implement full backpropagation through time.

use rand::Rng;

use crate::layer::{Layer, Param};
use crate::mat::Mat;

fn sigmoid(v: f32) -> f32 {
    1.0 / (1.0 + (-v).exp())
}

fn row(m: &Mat, r: usize) -> Mat {
    Mat::from_vec(1, m.cols(), m.row(r).to_vec())
}

/// A vanilla RNN: `h_t = tanh(x_t W + h_{t-1} U + b)` — the "RNN"
/// baseline of Table III.
#[derive(Clone, Debug)]
pub struct VanillaRnn {
    w: Param,
    u: Param,
    b: Param,
    hidden: usize,
    cache: Vec<StepCache>,
}

#[derive(Clone, Debug)]
struct StepCache {
    x: Mat,
    h_prev: Mat,
    h: Mat,
    // GRU-only gate caches (unused by the vanilla RNN).
    z: Mat,
    r: Mat,
    h_tilde: Mat,
}

impl VanillaRnn {
    /// Creates an RNN with the given input and hidden sizes.
    pub fn new<R: Rng + ?Sized>(input: usize, hidden: usize, rng: &mut R) -> Self {
        VanillaRnn {
            w: Param::new(Mat::xavier(input, hidden, rng)),
            u: Param::new(Mat::xavier(hidden, hidden, rng)),
            b: Param::new(Mat::zeros(1, hidden)),
            hidden,
            cache: Vec::new(),
        }
    }
}

impl Layer for VanillaRnn {
    fn forward(&mut self, x: &Mat) -> Mat {
        let t_len = x.rows();
        self.cache.clear();
        let mut h_prev = Mat::zeros(1, self.hidden);
        let mut out = Mat::zeros(t_len, self.hidden);
        for t in 0..t_len {
            let x_t = row(x, t);
            let pre = x_t
                .matmul(&self.w.value)
                .add(&h_prev.matmul(&self.u.value))
                .add_row_broadcast(&self.b.value);
            let h = pre.map(f32::tanh);
            out.row_mut(t).copy_from_slice(h.row(0));
            self.cache.push(StepCache {
                x: x_t,
                h_prev: h_prev.clone(),
                h: h.clone(),
                z: Mat::zeros(1, 0),
                r: Mat::zeros(1, 0),
                h_tilde: Mat::zeros(1, 0),
            });
            h_prev = h;
        }
        out
    }

    fn backward(&mut self, grad_out: &Mat) -> Mat {
        let t_len = self.cache.len();
        let input_dim = self.w.value.rows();
        let mut dx = Mat::zeros(t_len, input_dim);
        let mut dh_next = Mat::zeros(1, self.hidden);
        for t in (0..t_len).rev() {
            let step = &self.cache[t];
            let dh = row(grad_out, t).add(&dh_next);
            // d(pre-tanh) = dh * (1 - h^2)
            let dpre = dh.hadamard(&step.h.map(|v| 1.0 - v * v));
            self.w.grad.add_assign(&step.x.transpose().matmul(&dpre));
            self.u
                .grad
                .add_assign(&step.h_prev.transpose().matmul(&dpre));
            self.b.grad.add_assign(&dpre);
            dx.row_mut(t)
                .copy_from_slice(dpre.matmul(&self.w.value.transpose()).row(0));
            dh_next = dpre.matmul(&self.u.value.transpose());
        }
        dx
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.w, &mut self.u, &mut self.b]
    }
}

/// A GRU layer (paper Eq. 4):
///
/// ```text
/// r_t = σ(x_t W_r + h_{t-1} U_r + b_r)
/// z_t = σ(x_t W_z + h_{t-1} U_z + b_z)
/// h̃_t = tanh(x_t W_h + (r_t ⊙ h_{t-1}) U_h + b_h)
/// h_t = (1 - z_t) ⊙ h_{t-1} + z_t ⊙ h̃_t
/// ```
#[derive(Clone, Debug)]
pub struct Gru {
    wz: Param,
    uz: Param,
    bz: Param,
    wr: Param,
    ur: Param,
    br: Param,
    wh: Param,
    uh: Param,
    bh: Param,
    hidden: usize,
    cache: Vec<StepCache>,
}

impl Gru {
    /// Creates a GRU with the given input and hidden sizes.
    pub fn new<R: Rng + ?Sized>(input: usize, hidden: usize, rng: &mut R) -> Self {
        Gru {
            wz: Param::new(Mat::xavier(input, hidden, rng)),
            uz: Param::new(Mat::xavier(hidden, hidden, rng)),
            bz: Param::new(Mat::zeros(1, hidden)),
            wr: Param::new(Mat::xavier(input, hidden, rng)),
            ur: Param::new(Mat::xavier(hidden, hidden, rng)),
            br: Param::new(Mat::zeros(1, hidden)),
            wh: Param::new(Mat::xavier(input, hidden, rng)),
            uh: Param::new(Mat::xavier(hidden, hidden, rng)),
            bh: Param::new(Mat::zeros(1, hidden)),
            hidden,
            cache: Vec::new(),
        }
    }

    /// Hidden width.
    pub fn hidden(&self) -> usize {
        self.hidden
    }
}

impl Layer for Gru {
    fn forward(&mut self, x: &Mat) -> Mat {
        let t_len = x.rows();
        self.cache.clear();
        let mut h_prev = Mat::zeros(1, self.hidden);
        let mut out = Mat::zeros(t_len, self.hidden);
        for t in 0..t_len {
            let x_t = row(x, t);
            let z = x_t
                .matmul(&self.wz.value)
                .add(&h_prev.matmul(&self.uz.value))
                .add_row_broadcast(&self.bz.value)
                .map(sigmoid);
            let r = x_t
                .matmul(&self.wr.value)
                .add(&h_prev.matmul(&self.ur.value))
                .add_row_broadcast(&self.br.value)
                .map(sigmoid);
            let rh = r.hadamard(&h_prev);
            let h_tilde = x_t
                .matmul(&self.wh.value)
                .add(&rh.matmul(&self.uh.value))
                .add_row_broadcast(&self.bh.value)
                .map(f32::tanh);
            // h = (1 - z) ⊙ h_prev + z ⊙ h̃
            let h = h_prev
                .hadamard(&z.map(|v| 1.0 - v))
                .add(&z.hadamard(&h_tilde));
            out.row_mut(t).copy_from_slice(h.row(0));
            self.cache.push(StepCache {
                x: x_t,
                h_prev: h_prev.clone(),
                h: h.clone(),
                z,
                r,
                h_tilde,
            });
            h_prev = h;
        }
        out
    }

    fn backward(&mut self, grad_out: &Mat) -> Mat {
        let t_len = self.cache.len();
        let input_dim = self.wz.value.rows();
        let mut dx = Mat::zeros(t_len, input_dim);
        let mut dh_next = Mat::zeros(1, self.hidden);
        for t in (0..t_len).rev() {
            let step = &self.cache[t];
            let dh = row(grad_out, t).add(&dh_next);

            // h = (1-z)·h_prev + z·h̃
            let dh_tilde = dh.hadamard(&step.z);
            let dz = dh.hadamard(&step.h_tilde.sub(&step.h_prev));
            let mut dh_prev = dh.hadamard(&step.z.map(|v| 1.0 - v));

            // h̃ = tanh(x W_h + (r⊙h_prev) U_h + b_h)
            let da_h = dh_tilde.hadamard(&step.h_tilde.map(|v| 1.0 - v * v));
            let rh = step.r.hadamard(&step.h_prev);
            self.wh.grad.add_assign(&step.x.transpose().matmul(&da_h));
            self.uh.grad.add_assign(&rh.transpose().matmul(&da_h));
            self.bh.grad.add_assign(&da_h);
            let d_rh = da_h.matmul(&self.uh.value.transpose());
            let dr = d_rh.hadamard(&step.h_prev);
            dh_prev.add_assign(&d_rh.hadamard(&step.r));

            // z = σ(x W_z + h_prev U_z + b_z)
            let da_z = dz.hadamard(&step.z.map(|v| v * (1.0 - v)));
            self.wz.grad.add_assign(&step.x.transpose().matmul(&da_z));
            self.uz
                .grad
                .add_assign(&step.h_prev.transpose().matmul(&da_z));
            self.bz.grad.add_assign(&da_z);
            dh_prev.add_assign(&da_z.matmul(&self.uz.value.transpose()));

            // r = σ(x W_r + h_prev U_r + b_r)
            let da_r = dr.hadamard(&step.r.map(|v| v * (1.0 - v)));
            self.wr.grad.add_assign(&step.x.transpose().matmul(&da_r));
            self.ur
                .grad
                .add_assign(&step.h_prev.transpose().matmul(&da_r));
            self.br.grad.add_assign(&da_r);
            dh_prev.add_assign(&da_r.matmul(&self.ur.value.transpose()));

            // dx_t
            let dx_t = da_z
                .matmul(&self.wz.value.transpose())
                .add(&da_r.matmul(&self.wr.value.transpose()))
                .add(&da_h.matmul(&self.wh.value.transpose()));
            dx.row_mut(t).copy_from_slice(dx_t.row(0));
            dh_next = dh_prev;
        }
        dx
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![
            &mut self.wz,
            &mut self.uz,
            &mut self.bz,
            &mut self.wr,
            &mut self.ur,
            &mut self.br,
            &mut self.wh,
            &mut self.uh,
            &mut self.bh,
        ]
    }
}

/// A bidirectional GRU (paper Eq. 5): a forward GRU over the sequence and
/// a backward GRU over the reversed sequence, outputs concatenated to
/// `T × 2H`.
#[derive(Clone, Debug)]
pub struct BiGru {
    forward_gru: Gru,
    backward_gru: Gru,
}

impl BiGru {
    /// Creates a BiGRU with the given input size and per-direction hidden
    /// size (output width is `2 * hidden`).
    pub fn new<R: Rng + ?Sized>(input: usize, hidden: usize, rng: &mut R) -> Self {
        BiGru {
            forward_gru: Gru::new(input, hidden, rng),
            backward_gru: Gru::new(input, hidden, rng),
        }
    }

    /// Per-direction hidden width.
    pub fn hidden(&self) -> usize {
        self.forward_gru.hidden()
    }
}

impl Layer for BiGru {
    fn forward(&mut self, x: &Mat) -> Mat {
        let fwd = self.forward_gru.forward(x);
        let bwd = self.backward_gru.forward(&x.reverse_rows()).reverse_rows();
        fwd.hcat(&bwd)
    }

    fn backward(&mut self, grad_out: &Mat) -> Mat {
        let hidden = self.hidden();
        let d_fwd = grad_out.col_slice(0, hidden);
        let d_bwd = grad_out.col_slice(hidden, 2 * hidden);
        let dx_fwd = self.forward_gru.backward(&d_fwd);
        let dx_bwd = self
            .backward_gru
            .backward(&d_bwd.reverse_rows())
            .reverse_rows();
        dx_fwd.add(&dx_bwd)
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut params = self.forward_gru.params_mut();
        params.extend(self.backward_gru.params_mut());
        params
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{grad_check_input, grad_check_param};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(11)
    }

    fn input(t: usize, c: usize) -> Mat {
        let mut r = rng();
        Mat::from_vec(t, c, (0..t * c).map(|_| r.gen_range(-1.0..1.0)).collect())
    }

    #[test]
    fn rnn_shapes() {
        let mut r = rng();
        let mut rnn = VanillaRnn::new(3, 5, &mut r);
        let y = rnn.forward(&input(7, 3));
        assert_eq!((y.rows(), y.cols()), (7, 5));
    }

    #[test]
    fn rnn_grad_check() {
        let mut r = rng();
        let mut rnn = VanillaRnn::new(2, 4, &mut r);
        let x = input(6, 2);
        assert!(grad_check_input(&mut rnn, &x, 1e-3) < 0.02);
        for p in 0..3 {
            assert!(grad_check_param(&mut rnn, &x, p, 1e-3) < 0.02, "param {p}");
        }
    }

    #[test]
    fn gru_shapes_and_bounded_output() {
        let mut r = rng();
        let mut gru = Gru::new(3, 5, &mut r);
        let y = gru.forward(&input(7, 3));
        assert_eq!((y.rows(), y.cols()), (7, 5));
        // GRU hidden states are convex mixes of tanh outputs: |h| <= 1.
        assert!(y.data().iter().all(|v| v.abs() <= 1.0));
    }

    #[test]
    fn gru_grad_check_input() {
        let mut r = rng();
        let mut gru = Gru::new(2, 3, &mut r);
        let x = input(5, 2);
        assert!(grad_check_input(&mut gru, &x, 1e-3) < 0.02);
    }

    #[test]
    fn gru_grad_check_all_params() {
        let mut r = rng();
        let mut gru = Gru::new(2, 3, &mut r);
        let x = input(5, 2);
        for p in 0..9 {
            // f32 finite differences are noisy at small eps; 1e-2 keeps
            // truncation and round-off balanced.
            assert!(grad_check_param(&mut gru, &x, p, 1e-2) < 0.05, "param {p}");
        }
    }

    #[test]
    fn gru_state_carries_information() {
        // Identical inputs at t=0 and t=3 must produce different hidden
        // states (history matters).
        let mut r = rng();
        let mut gru = Gru::new(1, 4, &mut r);
        let x = Mat::from_vec(4, 1, vec![0.5, -0.2, 0.9, 0.5]);
        let y = gru.forward(&x);
        assert_ne!(y.row(0), y.row(3));
    }

    #[test]
    fn bigru_shapes() {
        let mut r = rng();
        let mut bigru = BiGru::new(3, 4, &mut r);
        let y = bigru.forward(&input(6, 3));
        assert_eq!((y.rows(), y.cols()), (6, 8));
    }

    #[test]
    fn bigru_sees_the_future() {
        // Changing the last input must change the *first* output row
        // through the backward direction — the whole point of Eq. 5.
        let mut r = rng();
        let mut bigru = BiGru::new(1, 3, &mut r);
        let x1 = input(6, 1);
        let mut x2 = x1.clone();
        x2.set(5, 0, 5.0);
        let y1 = bigru.forward(&x1);
        let y2 = bigru.forward(&x2);
        assert_ne!(y1.row(0), y2.row(0), "backward direction inert");
    }

    #[test]
    fn bigru_grad_check() {
        let mut r = rng();
        let mut bigru = BiGru::new(2, 3, &mut r);
        let x = input(5, 2);
        assert!(grad_check_input(&mut bigru, &x, 1e-3) < 0.03);
        assert!(grad_check_param(&mut bigru, &x, 0, 1e-3) < 0.03); // fwd Wz
        assert!(grad_check_param(&mut bigru, &x, 9, 1e-3) < 0.03); // bwd Wz
    }

    #[test]
    fn param_counts() {
        let mut r = rng();
        let mut gru = Gru::new(2, 3, &mut r);
        // 3*(2*3 + 3*3 + 3) = 54
        assert_eq!(gru.param_count(), 54);
        let mut bigru = BiGru::new(2, 3, &mut r);
        assert_eq!(bigru.param_count(), 108);
    }
}
