//! A scalable simulation clock.
//!
//! All chain simulators express their timing (block intervals, consensus
//! rounds, network RTTs) in *simulated* durations. The [`SimClock`] maps a
//! simulated duration onto wall time divided by a speed-up factor, so the
//! same configuration can run in real time (speed-up 1) for demos or 1000×
//! accelerated for tests and benchmarks while preserving every ratio between
//! the systems under test.

use std::sync::Arc;
use std::time::{Duration, Instant};

/// A shared, cloneable simulation clock.
///
/// Cloning is cheap; all clones share the same epoch and speed-up.
#[derive(Clone, Debug)]
pub struct SimClock {
    inner: Arc<ClockInner>,
}

#[derive(Debug)]
struct ClockInner {
    epoch: Instant,
    /// How many simulated seconds elapse per wall-clock second.
    speedup: f64,
    /// Simulated time already elapsed before this clock was created.
    ///
    /// Zero for ordinary clocks. A restarted node process passes the
    /// driver's current simulated time here so its clock resumes where
    /// the run is, instead of restarting from zero.
    base: Duration,
}

impl Default for SimClock {
    fn default() -> Self {
        Self::realtime()
    }
}

impl SimClock {
    /// A clock where simulated time equals wall time.
    pub fn realtime() -> Self {
        Self::with_speedup(1.0)
    }

    /// A clock running `speedup` times faster than wall time.
    ///
    /// # Panics
    ///
    /// Panics if `speedup` is not finite and positive.
    pub fn with_speedup(speedup: f64) -> Self {
        Self::with_speedup_from(speedup, Duration::ZERO)
    }

    /// A clock running `speedup` times faster than wall time whose
    /// simulated time starts at `base` instead of zero.
    ///
    /// This exists for process restart: when a supervisor respawns a
    /// node-host mid-run it passes the run's current simulated time, so
    /// the new process's block timestamps and fault-window checks stay
    /// continuous with the driver's clock instead of rewinding to the
    /// epoch.
    ///
    /// # Panics
    ///
    /// Panics if `speedup` is not finite and positive.
    pub fn with_speedup_from(speedup: f64, base: Duration) -> Self {
        assert!(
            speedup.is_finite() && speedup > 0.0,
            "speedup must be finite and positive, got {speedup}"
        );
        SimClock {
            inner: Arc::new(ClockInner {
                epoch: Instant::now(),
                speedup,
                base,
            }),
        }
    }

    /// The configured speed-up factor.
    pub fn speedup(&self) -> f64 {
        self.inner.speedup
    }

    /// Simulated time elapsed since the clock's epoch (plus any restart
    /// base set by [`SimClock::with_speedup_from`]).
    pub fn now(&self) -> Duration {
        let wall = self.inner.epoch.elapsed();
        self.inner.base + wall.mul_f64(self.inner.speedup)
    }

    /// Simulated time as fractional seconds since the epoch.
    pub fn now_secs(&self) -> f64 {
        self.now().as_secs_f64()
    }

    /// Blocks the current thread for `sim_duration` of simulated time
    /// (i.e. `sim_duration / speedup` of wall time).
    ///
    /// OS sleep has a ~50 µs+ floor, which would grossly distort
    /// fine-grained cost models under high speed-ups, so short waits spin:
    /// waits under 1 ms sleep for all but the last ~200 µs and busy-wait
    /// the remainder against a deadline.
    pub fn sleep(&self, sim_duration: Duration) {
        let wall = self.to_wall(sim_duration);
        if wall.is_zero() {
            return;
        }
        let deadline = Instant::now() + wall;
        const SPIN_THRESHOLD: Duration = Duration::from_micros(200);
        if wall > SPIN_THRESHOLD {
            std::thread::sleep(wall - SPIN_THRESHOLD);
        }
        // Yield rather than spin for the tail: on a single-core host a
        // pure spin loop starves every other simulation thread for its
        // whole quantum.
        while Instant::now() < deadline {
            std::thread::yield_now();
        }
    }

    /// Blocks until the simulated clock reaches `sim_deadline` (absolute).
    ///
    /// Unlike [`SimClock::sleep`], lateness does not accumulate: a thread
    /// that was descheduled past its deadline returns immediately, which
    /// keeps rate-pacing loops accurate on oversubscribed hosts.
    pub fn sleep_until(&self, sim_deadline: Duration) {
        loop {
            let now = self.now();
            if now >= sim_deadline {
                return;
            }
            let remaining_wall = self.to_wall(sim_deadline - now);
            if remaining_wall > Duration::from_micros(500) {
                std::thread::sleep(remaining_wall - Duration::from_micros(200));
            } else {
                std::thread::yield_now();
            }
        }
    }

    /// Converts a simulated duration to the wall duration it occupies.
    pub fn to_wall(&self, sim_duration: Duration) -> Duration {
        sim_duration.div_f64(self.inner.speedup)
    }

    /// Converts a wall duration to the simulated duration it represents.
    pub fn to_sim(&self, wall_duration: Duration) -> Duration {
        wall_duration.mul_f64(self.inner.speedup)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn realtime_now_advances() {
        let clock = SimClock::realtime();
        let t0 = clock.now();
        std::thread::sleep(Duration::from_millis(5));
        assert!(clock.now() > t0);
    }

    #[test]
    fn speedup_scales_now() {
        let clock = SimClock::with_speedup(1000.0);
        std::thread::sleep(Duration::from_millis(5));
        // 5ms wall = 5s simulated under 1000x.
        let sim = clock.now();
        assert!(sim >= Duration::from_secs(4), "sim = {sim:?}");
    }

    #[test]
    fn sleep_is_scaled_down() {
        let clock = SimClock::with_speedup(1000.0);
        let start = Instant::now();
        clock.sleep(Duration::from_secs(1)); // should take ~1ms wall
        let wall = start.elapsed();
        assert!(wall < Duration::from_millis(200), "wall = {wall:?}");
    }

    #[test]
    fn conversions_roundtrip() {
        let clock = SimClock::with_speedup(250.0);
        let sim = Duration::from_millis(500);
        let wall = clock.to_wall(sim);
        let back = clock.to_sim(wall);
        let diff = back.abs_diff(sim);
        assert!(diff < Duration::from_micros(10), "diff = {diff:?}");
    }

    #[test]
    fn clones_share_epoch() {
        let a = SimClock::with_speedup(10.0);
        let b = a.clone();
        let ta = a.now();
        let tb = b.now();
        let diff = tb.abs_diff(ta);
        assert!(diff < Duration::from_millis(50));
    }

    #[test]
    fn restart_base_offsets_now() {
        let clock = SimClock::with_speedup_from(1000.0, Duration::from_secs(90));
        let now = clock.now();
        assert!(now >= Duration::from_secs(90), "now = {now:?}");
        // The base participates in absolute waits too.
        clock.sleep_until(Duration::from_secs(91)); // ~1ms wall
        assert!(clock.now() >= Duration::from_secs(91));
    }

    #[test]
    #[should_panic(expected = "speedup must be finite and positive")]
    fn rejects_zero_speedup() {
        let _ = SimClock::with_speedup(0.0);
    }

    #[test]
    #[should_panic(expected = "speedup must be finite and positive")]
    fn rejects_nan_speedup() {
        let _ = SimClock::with_speedup(f64::NAN);
    }
}

#[cfg(test)]
mod spin_tests {
    use super::*;

    #[test]
    fn sleep_until_is_absolute() {
        let clock = SimClock::with_speedup(1000.0);
        let target = clock.now() + Duration::from_millis(500); // 0.5 ms wall
        clock.sleep_until(target);
        assert!(clock.now() >= target);
        // Already-passed deadlines return immediately.
        let start = Instant::now();
        clock.sleep_until(Duration::ZERO);
        assert!(start.elapsed() < Duration::from_millis(5));
    }

    #[test]
    fn short_sleeps_are_accurate() {
        // 50 µs wall sleeps must land within ~60 µs, not the ~1 ms an OS
        // sleep would give.
        let clock = SimClock::with_speedup(1000.0);
        let start = Instant::now();
        for _ in 0..20 {
            clock.sleep(Duration::from_millis(50)); // 50 µs wall each
        }
        let elapsed = start.elapsed();
        assert!(elapsed >= Duration::from_millis(1), "{elapsed:?}");
        assert!(elapsed < Duration::from_millis(5), "{elapsed:?}");
    }
}
