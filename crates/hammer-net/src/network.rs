//! The simulated message bus connecting named endpoints.
//!
//! Messages sent through [`SimNetwork::send`] are delivered to the
//! destination endpoint's channel after the link's sampled delay (scaled by
//! the shared [`SimClock`]), unless the link drops them or a partition
//! separates the two endpoints. A background scheduler thread owns a
//! min-heap of pending deliveries.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{self, Receiver, RecvTimeoutError, Sender};
use hammer_obs::{Counter, Obs};
use parking_lot::{Condvar, Mutex};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::clock::SimClock;
use crate::fault::{FaultPlan, FaultPlanError, NodeFault};
use crate::link::LinkConfig;

/// Default RNG seed for delay/loss sampling. One fixed seed (rather than
/// per-call-site entropy) keeps probabilistic loss reproducible; override
/// it per run with [`SimNetwork::with_seed`] or [`SimNetwork::reseed`].
pub const DEFAULT_NET_SEED: u64 = 0xbeef_cafe;

/// A message in flight or delivered.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Message {
    /// Sender endpoint name.
    pub from: String,
    /// Destination endpoint name.
    pub to: String,
    /// Opaque payload bytes.
    pub payload: Vec<u8>,
    /// Simulated send timestamp (from the network's clock).
    pub sent_at: Duration,
}

/// Errors from network operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NetError {
    /// The named endpoint was never registered.
    UnknownEndpoint(String),
    /// An endpoint with this name already exists.
    DuplicateEndpoint(String),
    /// The network scheduler has shut down.
    Shutdown,
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::UnknownEndpoint(name) => write!(f, "unknown endpoint: {name}"),
            NetError::DuplicateEndpoint(name) => write!(f, "duplicate endpoint: {name}"),
            NetError::Shutdown => write!(f, "network scheduler has shut down"),
        }
    }
}

impl std::error::Error for NetError {}

/// The receiving side of a registered endpoint.
#[derive(Debug)]
pub struct Endpoint {
    name: String,
    rx: Receiver<Message>,
}

impl Endpoint {
    /// The endpoint's registered name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Blocks until a message arrives or all senders disconnect.
    pub fn recv(&self) -> Option<Message> {
        self.rx.recv().ok()
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<Message> {
        self.rx.try_recv().ok()
    }

    /// Blocking receive with a wall-clock timeout.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<Message, RecvTimeoutError> {
        self.rx.recv_timeout(timeout)
    }

    /// Number of messages waiting in the inbox.
    pub fn pending(&self) -> usize {
        self.rx.len()
    }
}

struct Pending {
    deliver_at: Instant,
    seq: u64,
    msg: Message,
}

impl PartialEq for Pending {
    fn eq(&self, other: &Self) -> bool {
        self.deliver_at == other.deliver_at && self.seq == other.seq
    }
}
impl Eq for Pending {}
impl PartialOrd for Pending {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Pending {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.deliver_at, self.seq).cmp(&(other.deliver_at, other.seq))
    }
}

#[derive(Default)]
struct SchedulerState {
    heap: BinaryHeap<Reverse<Pending>>,
    shutdown: bool,
}

struct Shared {
    clock: SimClock,
    default_link: LinkConfig,
    endpoints: Mutex<HashMap<String, Sender<Message>>>,
    links: Mutex<HashMap<(String, String), LinkConfig>>,
    /// Partition group of each endpoint; endpoints in different groups
    /// cannot communicate. Empty map means no partition.
    partition: Mutex<HashMap<String, usize>>,
    /// Scripted fault schedule, consulted against the clock on every send.
    faults: Mutex<Option<Arc<FaultPlan>>>,
    sched: Mutex<SchedulerState>,
    sched_cv: Condvar,
    /// The scheduler thread's handle, taken by
    /// [`SimNetwork::shutdown_and_join`] for deterministic teardown.
    sched_thread: Mutex<Option<std::thread::JoinHandle<()>>>,
    rng: Mutex<StdRng>,
    seq: Mutex<u64>,
    stats: Mutex<NetStats>,
    /// Fast-path flag mirroring `obs` being an enabled bundle, so the
    /// disabled case costs one relaxed load per send.
    obs_enabled: AtomicBool,
    obs: Mutex<ObsState>,
}

/// Observability state carried by the network: the installed bundle
/// plus interned per-link byte counters and drop counters, so the send
/// path never rebuilds label strings.
struct ObsState {
    obs: Obs,
    link_bytes: HashMap<(String, String), Counter>,
    drop_lost: Counter,
    drop_partitioned: Counter,
    drop_faulted: Counter,
}

impl ObsState {
    fn new(obs: Obs) -> Self {
        let reg = obs.registry();
        ObsState {
            drop_lost: reg.counter_with("hammer_net_dropped_total", &[("reason", "loss")]),
            drop_partitioned: reg
                .counter_with("hammer_net_dropped_total", &[("reason", "partition")]),
            drop_faulted: reg.counter_with("hammer_net_dropped_total", &[("reason", "fault")]),
            link_bytes: HashMap::new(),
            obs,
        }
    }
}

/// Counters describing everything the network has done so far.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Messages accepted by `send`.
    pub sent: u64,
    /// Messages delivered to an endpoint inbox.
    pub delivered: u64,
    /// Messages dropped by link loss.
    pub lost: u64,
    /// Messages dropped because a partition separated the pair.
    pub partitioned: u64,
    /// Messages dropped by an active fault window (crash, blackhole, or
    /// scripted partition).
    pub faulted: u64,
    /// Total payload bytes accepted.
    pub bytes_sent: u64,
}

/// The simulated network. Cheap to clone; all clones share state.
#[derive(Clone)]
pub struct SimNetwork {
    shared: Arc<Shared>,
}

impl std::fmt::Debug for SimNetwork {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimNetwork")
            .field("endpoints", &self.shared.endpoints.lock().len())
            .field("stats", &self.stats())
            .finish()
    }
}

impl SimNetwork {
    /// Creates a network with the given clock and default link quality,
    /// spawning the delivery scheduler thread. Uses [`DEFAULT_NET_SEED`]
    /// for delay/loss sampling; see [`SimNetwork::with_seed`].
    pub fn new(clock: SimClock, default_link: LinkConfig) -> Self {
        Self::with_seed(clock, default_link, DEFAULT_NET_SEED)
    }

    /// Creates a network whose probabilistic delay/loss sampling is driven
    /// by `seed`, so lossy-link and fault runs are reproducible end to end.
    pub fn with_seed(clock: SimClock, default_link: LinkConfig, seed: u64) -> Self {
        default_link
            .validate()
            .expect("default link configuration must be valid");
        let shared = Arc::new(Shared {
            clock,
            default_link,
            endpoints: Mutex::new(HashMap::new()),
            links: Mutex::new(HashMap::new()),
            partition: Mutex::new(HashMap::new()),
            faults: Mutex::new(None),
            sched: Mutex::new(SchedulerState::default()),
            sched_cv: Condvar::new(),
            sched_thread: Mutex::new(None),
            rng: Mutex::new(StdRng::seed_from_u64(seed)),
            seq: Mutex::new(0),
            stats: Mutex::new(NetStats::default()),
            obs_enabled: AtomicBool::new(false),
            obs: Mutex::new(ObsState::new(Obs::disabled())),
        });
        let weak = Arc::downgrade(&shared);
        let handle = std::thread::Builder::new()
            .name("sim-net-scheduler".to_owned())
            .spawn(move || scheduler_loop(weak))
            .expect("failed to spawn network scheduler");
        *shared.sched_thread.lock() = Some(handle);
        SimNetwork { shared }
    }

    /// Creates an ideal network on a realtime clock — handy in tests.
    pub fn ideal() -> Self {
        Self::new(SimClock::realtime(), LinkConfig::ideal())
    }

    /// Re-seeds the internal RNG for reproducible delay/loss sampling.
    pub fn reseed(&self, seed: u64) {
        *self.shared.rng.lock() = StdRng::seed_from_u64(seed);
    }

    /// Registers a named endpoint and returns its receiving half.
    ///
    /// # Panics
    ///
    /// Panics when the name is already taken; endpoint names identify nodes
    /// and duplicates are a programming error.
    pub fn register(&self, name: &str) -> Endpoint {
        let (tx, rx) = channel::unbounded();
        let mut eps = self.shared.endpoints.lock();
        if eps.contains_key(name) {
            panic!("duplicate endpoint: {name}");
        }
        eps.insert(name.to_owned(), tx);
        Endpoint {
            name: name.to_owned(),
            rx,
        }
    }

    /// Removes an endpoint; later sends to it fail with `UnknownEndpoint`.
    pub fn deregister(&self, name: &str) {
        self.shared.endpoints.lock().remove(name);
    }

    /// Overrides link quality for the directed pair `(from, to)`.
    pub fn set_link(&self, from: &str, to: &str, cfg: LinkConfig) {
        cfg.validate().expect("link configuration must be valid");
        self.shared
            .links
            .lock()
            .insert((from.to_owned(), to.to_owned()), cfg);
    }

    /// Imposes a partition: endpoints listed in different groups cannot
    /// exchange messages. Unlisted endpoints can talk to everyone.
    pub fn partition(&self, groups: &[&[&str]]) {
        let mut map = self.shared.partition.lock();
        map.clear();
        for (gid, group) in groups.iter().enumerate() {
            for name in *group {
                map.insert((*name).to_owned(), gid);
            }
        }
    }

    /// Removes any partition.
    pub fn heal(&self) {
        self.shared.partition.lock().clear();
    }

    /// Installs a scripted fault schedule. Windows are evaluated against
    /// this network's clock on every send; chain simulators additionally
    /// consult [`SimNetwork::node_fault`] to gate production and ingress.
    ///
    /// This is the infallible convenience for hand-written fixtures: it
    /// is exactly [`SimNetwork::try_install_faults`] with the error
    /// unwrapped, so both entry points share one validation code path
    /// (plan shape *and* topology). Install after the chain has deployed
    /// so the plan's node names can be checked against the registered
    /// endpoints; generated or user-supplied plans should prefer the
    /// fallible variant and handle the typed error.
    ///
    /// # Panics
    ///
    /// Panics when the plan contains an empty or inverted window, an
    /// ambiguous partition, contradictory overlapping windows, or a node
    /// name that is not a registered endpoint — scripted faults are test
    /// fixtures and a malformed one is a programming error.
    pub fn install_faults(&self, plan: FaultPlan) {
        self.try_install_faults(plan)
            .expect("fault plan must be valid");
    }

    /// Fallible fault installation: validates the plan's shape *and*
    /// checks every referenced node against the currently registered
    /// endpoints ([`SimNetwork::endpoint_names`]), so a typo'd or stale
    /// node name is rejected instead of producing a window that silently
    /// never fires. Call this after the chain has deployed (endpoints
    /// registered); nothing is installed on error.
    pub fn try_install_faults(&self, plan: FaultPlan) -> Result<(), FaultPlanError> {
        plan.validate_against(&self.endpoint_names())?;
        *self.shared.faults.lock() = Some(Arc::new(plan));
        Ok(())
    }

    /// Removes any installed fault schedule.
    pub fn clear_faults(&self) {
        *self.shared.faults.lock() = None;
    }

    /// The currently installed fault schedule, if any.
    pub fn fault_plan(&self) -> Option<Arc<FaultPlan>> {
        self.shared.faults.lock().clone()
    }

    /// How `name` is impaired right now (per the installed plan and this
    /// network's clock), if at all.
    pub fn node_fault(&self, name: &str) -> Option<NodeFault> {
        let plan = self.shared.faults.lock().clone()?;
        plan.node_fault(name, self.shared.clock.now())
    }

    /// Whether `name` is crash-faulted right now. Production loops poll
    /// this to stop sealing blocks while their node is down.
    pub fn node_crashed(&self, name: &str) -> bool {
        matches!(self.node_fault(name), Some(NodeFault::Crashed))
    }

    /// Installs an observability bundle. Every component holding this
    /// network (chain simulators, the evaluation driver, the resource
    /// monitor) records into the installed bundle; without one, the
    /// default disabled bundle makes all instrumentation a no-op.
    pub fn install_obs(&self, obs: Obs) {
        self.shared
            .obs_enabled
            .store(obs.enabled(), Ordering::Relaxed);
        *self.shared.obs.lock() = ObsState::new(obs);
    }

    /// The installed observability bundle (a disabled bundle when none
    /// was installed). Cheap to call off the hot path; hot loops should
    /// fetch once and reuse the handles.
    pub fn obs(&self) -> Obs {
        self.shared.obs.lock().obs.clone()
    }

    /// Whether an enabled observability bundle is installed.
    pub fn obs_on(&self) -> bool {
        self.shared.obs_enabled.load(Ordering::Relaxed)
    }

    /// Record accepted payload bytes on the directed link, interning the
    /// labelled counter on first use.
    fn record_link_bytes(&self, from: &str, to: &str, bytes: u64) {
        let mut state = self.shared.obs.lock();
        let state = &mut *state;
        state
            .link_bytes
            .entry((from.to_owned(), to.to_owned()))
            .or_insert_with(|| {
                state
                    .obs
                    .registry()
                    .counter_with("hammer_net_link_bytes_total", &[("from", from), ("to", to)])
            })
            .add(bytes);
    }

    /// Sends `payload` from `from` to `to`, scheduling delivery after the
    /// link's sampled delay. Returns immediately.
    pub fn send(&self, from: &str, to: &str, payload: Vec<u8>) -> Result<(), NetError> {
        if !self.shared.endpoints.lock().contains_key(to) {
            return Err(NetError::UnknownEndpoint(to.to_owned()));
        }
        {
            let mut stats = self.shared.stats.lock();
            stats.sent += 1;
            stats.bytes_sent += payload.len() as u64;
        }
        let obs_on = self.obs_on();
        if obs_on {
            self.record_link_bytes(from, to, payload.len() as u64);
        }
        // Partition check.
        {
            let part = self.shared.partition.lock();
            if let (Some(a), Some(b)) = (part.get(from), part.get(to)) {
                if a != b {
                    self.shared.stats.lock().partitioned += 1;
                    if obs_on {
                        self.shared.obs.lock().drop_partitioned.inc();
                    }
                    return Ok(()); // silently dropped, like a real partition
                }
            }
        }
        // Scripted fault check: severed links drop silently (like a real
        // partition), active latency spikes stretch the delivery below.
        let fault_extra = {
            let plan = self.shared.faults.lock().clone();
            match plan {
                Some(plan) => {
                    let now = self.shared.clock.now();
                    if plan.link_cut(from, to, now) {
                        self.shared.stats.lock().faulted += 1;
                        if obs_on {
                            self.shared.obs.lock().drop_faulted.inc();
                        }
                        return Ok(());
                    }
                    plan.extra_latency(from, to, now)
                }
                None => Duration::ZERO,
            }
        };
        let link = self
            .shared
            .links
            .lock()
            .get(&(from.to_owned(), to.to_owned()))
            .copied()
            .unwrap_or(self.shared.default_link);
        let (lost, sim_delay) = {
            let mut rng = self.shared.rng.lock();
            (
                link.sample_loss(&mut *rng),
                link.sample_delay(payload.len(), &mut *rng),
            )
        };
        if lost {
            self.shared.stats.lock().lost += 1;
            if obs_on {
                self.shared.obs.lock().drop_lost.inc();
            }
            return Ok(());
        }
        let wall_delay = self.shared.clock.to_wall(sim_delay + fault_extra);
        let msg = Message {
            from: from.to_owned(),
            to: to.to_owned(),
            payload,
            sent_at: self.shared.clock.now(),
        };
        let seq = {
            let mut s = self.shared.seq.lock();
            *s += 1;
            *s
        };
        let mut sched = self.shared.sched.lock();
        if sched.shutdown {
            return Err(NetError::Shutdown);
        }
        sched.heap.push(Reverse(Pending {
            deliver_at: Instant::now() + wall_delay,
            seq,
            msg,
        }));
        drop(sched);
        self.shared.sched_cv.notify_one();
        Ok(())
    }

    /// Broadcasts `payload` from `from` to every other registered endpoint.
    pub fn broadcast(&self, from: &str, payload: &[u8]) -> Result<usize, NetError> {
        let targets: Vec<String> = {
            let eps = self.shared.endpoints.lock();
            eps.keys().filter(|k| k.as_str() != from).cloned().collect()
        };
        let mut count = 0;
        for t in targets {
            self.send(from, &t, payload.to_vec())?;
            count += 1;
        }
        Ok(count)
    }

    /// A snapshot of the network counters.
    pub fn stats(&self) -> NetStats {
        *self.shared.stats.lock()
    }

    /// The clock this network runs on.
    pub fn clock(&self) -> &SimClock {
        &self.shared.clock
    }

    /// Names of all registered endpoints, sorted.
    pub fn endpoint_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.shared.endpoints.lock().keys().cloned().collect();
        names.sort();
        names
    }

    /// Stops the delivery scheduler and joins its thread.
    ///
    /// Without this, teardown is only *eventually* quiet: the scheduler
    /// thread holds a `Weak` to the shared state and exits within one
    /// 50 ms poll tick of the last [`SimNetwork`] clone dropping, which
    /// makes thread-leak probes taken right after teardown racy. Calling
    /// `shutdown_and_join` first makes the quiesce deterministic: when it
    /// returns, the scheduler thread is gone and any in-flight deliveries
    /// are discarded. Later [`SimNetwork::send`]s fail with
    /// [`NetError::Shutdown`].
    ///
    /// Idempotent, and safe to call from any thread (including — as a
    /// no-join no-op — the scheduler itself, which cannot happen in
    /// practice but costs nothing to guard).
    pub fn shutdown_and_join(&self) {
        {
            let mut sched = self.shared.sched.lock();
            sched.shutdown = true;
        }
        self.shared.sched_cv.notify_all();
        let handle = self.shared.sched_thread.lock().take();
        if let Some(handle) = handle {
            if handle.thread().id() != std::thread::current().id() {
                let _ = handle.join();
            }
        }
    }
}

/// Tracks fault-window state transitions against the installed
/// observability bundle: each [`FaultObserver::poll`] diffs the set of
/// active fault windows since the previous poll, journals
/// `fault_enter`/`fault_exit` events, and updates the
/// `hammer_net_fault_windows_active` gauge. Poll it from any periodic
/// loop (the evaluation driver's monitor does).
pub struct FaultObserver {
    net: SimNetwork,
    active: Vec<String>,
}

impl FaultObserver {
    /// Observer over `net`'s installed fault plan and obs bundle.
    pub fn new(net: &SimNetwork) -> Self {
        FaultObserver {
            net: net.clone(),
            active: Vec::new(),
        }
    }

    /// Diff active windows against the previous poll and record the
    /// transitions. A no-op when no enabled bundle is installed.
    pub fn poll(&mut self) {
        if !self.net.obs_on() {
            return;
        }
        let obs = self.net.obs();
        let now = self.net.clock().now();
        let labels: Vec<String> = match self.net.fault_plan() {
            Some(plan) => plan
                .active_labels(now)
                .into_iter()
                .map(str::to_owned)
                .collect(),
            None => Vec::new(),
        };
        for label in &labels {
            if !self.active.contains(label) {
                obs.journal().fault_enter(now, label);
            }
        }
        for label in &self.active {
            if !labels.contains(label) {
                obs.journal().fault_exit(now, label);
            }
        }
        obs.registry()
            .gauge("hammer_net_fault_windows_active")
            .set(labels.len() as u64);
        self.active = labels;
    }

    /// Labels of the windows active at the last poll.
    pub fn active(&self) -> &[String] {
        &self.active
    }
}

fn scheduler_loop(weak: std::sync::Weak<Shared>) {
    loop {
        let shared = match weak.upgrade() {
            Some(s) => s,
            None => return, // network dropped entirely
        };
        // Hold the arc only briefly per iteration so drop can proceed.
        let mut sched = shared.sched.lock();
        if sched.shutdown {
            return; // deterministic teardown via shutdown_and_join
        }
        let now = Instant::now();
        // Deliver everything due.
        let mut due = Vec::new();
        while let Some(Reverse(p)) = sched.heap.peek() {
            if p.deliver_at <= now {
                let Reverse(p) = sched.heap.pop().expect("peeked");
                due.push(p);
            } else {
                break;
            }
        }
        let next_deadline = sched.heap.peek().map(|Reverse(p)| p.deliver_at);
        if due.is_empty() {
            match next_deadline {
                Some(deadline) => {
                    let wait = deadline.saturating_duration_since(Instant::now());
                    shared
                        .sched_cv
                        .wait_for(&mut sched, wait.min(Duration::from_millis(50)));
                }
                None => {
                    // Nothing pending: wait briefly, then re-check liveness.
                    shared
                        .sched_cv
                        .wait_for(&mut sched, Duration::from_millis(50));
                }
            }
            drop(sched);
            drop(shared);
            continue;
        }
        drop(sched);
        for p in due {
            let tx = shared.endpoints.lock().get(&p.msg.to).cloned();
            if let Some(tx) = tx {
                if tx.send(p.msg).is_ok() {
                    shared.stats.lock().delivered += 1;
                }
            }
        }
        drop(shared);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_net() -> SimNetwork {
        SimNetwork::new(SimClock::with_speedup(1000.0), LinkConfig::cloud_100mbps())
    }

    #[test]
    fn delivers_message() {
        let net = fast_net();
        let _a = net.register("a");
        let b = net.register("b");
        net.send("a", "b", b"hello".to_vec()).unwrap();
        let msg = b.recv_timeout(Duration::from_secs(2)).unwrap();
        assert_eq!(msg.payload, b"hello");
        assert_eq!(msg.from, "a");
        assert_eq!(msg.to, "b");
    }

    #[test]
    fn unknown_destination_errors() {
        let net = fast_net();
        let _a = net.register("a");
        assert_eq!(
            net.send("a", "nobody", vec![]),
            Err(NetError::UnknownEndpoint("nobody".to_owned()))
        );
    }

    #[test]
    #[should_panic(expected = "duplicate endpoint")]
    fn duplicate_registration_panics() {
        let net = fast_net();
        let _a = net.register("a");
        let _again = net.register("a");
    }

    #[test]
    fn fifo_per_link_with_fixed_delay() {
        // With zero jitter every message has the same delay, so ordering
        // must be preserved by the seq tiebreaker.
        let clock = SimClock::with_speedup(1000.0);
        let cfg = LinkConfig {
            base_latency: Duration::from_millis(5),
            jitter: Duration::ZERO,
            bandwidth_bps: None,
            loss_probability: 0.0,
        };
        let net = SimNetwork::new(clock, cfg);
        let _a = net.register("a");
        let b = net.register("b");
        for i in 0..20u8 {
            net.send("a", "b", vec![i]).unwrap();
        }
        for i in 0..20u8 {
            let msg = b.recv_timeout(Duration::from_secs(2)).unwrap();
            assert_eq!(msg.payload, vec![i]);
        }
    }

    #[test]
    fn partition_blocks_and_heal_restores() {
        let net = fast_net();
        let _a = net.register("a");
        let b = net.register("b");
        net.partition(&[&["a"], &["b"]]);
        net.send("a", "b", b"blocked".to_vec()).unwrap();
        assert!(b.recv_timeout(Duration::from_millis(100)).is_err());
        assert_eq!(net.stats().partitioned, 1);
        net.heal();
        net.send("a", "b", b"through".to_vec()).unwrap();
        let msg = b.recv_timeout(Duration::from_secs(2)).unwrap();
        assert_eq!(msg.payload, b"through");
    }

    #[test]
    fn same_group_can_communicate_under_partition() {
        let net = fast_net();
        let _a = net.register("a");
        let b = net.register("b");
        let _c = net.register("c");
        net.partition(&[&["a", "b"], &["c"]]);
        net.send("a", "b", b"ok".to_vec()).unwrap();
        assert!(b.recv_timeout(Duration::from_secs(2)).is_ok());
    }

    #[test]
    fn lossy_link_drops_some() {
        let clock = SimClock::with_speedup(1000.0);
        let cfg = LinkConfig {
            base_latency: Duration::ZERO,
            jitter: Duration::ZERO,
            bandwidth_bps: None,
            loss_probability: 0.5,
        };
        let net = SimNetwork::new(clock, cfg);
        net.reseed(123);
        let _a = net.register("a");
        let b = net.register("b");
        for _ in 0..200 {
            net.send("a", "b", vec![0]).unwrap();
        }
        // Wait for deliveries to settle.
        std::thread::sleep(Duration::from_millis(200));
        let stats = net.stats();
        assert!(stats.lost > 50, "lost = {}", stats.lost);
        assert!(stats.lost < 150, "lost = {}", stats.lost);
        assert_eq!(stats.delivered as usize, b.pending());
        assert_eq!(stats.lost + stats.delivered, 200);
    }

    #[test]
    fn broadcast_reaches_all_others() {
        let net = fast_net();
        let _a = net.register("a");
        let b = net.register("b");
        let c = net.register("c");
        let n = net.broadcast("a", b"hi").unwrap();
        assert_eq!(n, 2);
        assert!(b.recv_timeout(Duration::from_secs(2)).is_ok());
        assert!(c.recv_timeout(Duration::from_secs(2)).is_ok());
    }

    #[test]
    fn stats_count_bytes() {
        let net = fast_net();
        let _a = net.register("a");
        let _b = net.register("b");
        net.send("a", "b", vec![0u8; 100]).unwrap();
        net.send("a", "b", vec![0u8; 50]).unwrap();
        let stats = net.stats();
        assert_eq!(stats.sent, 2);
        assert_eq!(stats.bytes_sent, 150);
    }

    #[test]
    fn per_link_override_applies() {
        let clock = SimClock::with_speedup(1000.0);
        let slow = LinkConfig {
            base_latency: Duration::from_secs(3600), // absurdly slow default
            jitter: Duration::ZERO,
            bandwidth_bps: None,
            loss_probability: 0.0,
        };
        let net = SimNetwork::new(clock, slow);
        let _a = net.register("a");
        let b = net.register("b");
        net.set_link("a", "b", LinkConfig::ideal());
        net.send("a", "b", b"fast".to_vec()).unwrap();
        assert!(b.recv_timeout(Duration::from_secs(2)).is_ok());
    }

    #[test]
    fn deregistered_endpoint_unreachable() {
        let net = fast_net();
        let _a = net.register("a");
        let _b = net.register("b");
        net.deregister("b");
        assert!(matches!(
            net.send("a", "b", vec![]),
            Err(NetError::UnknownEndpoint(_))
        ));
    }

    #[test]
    fn fault_plan_cuts_links_inside_window() {
        use crate::fault::FaultPlan;
        // Start the window at zero so no clock race is possible.
        let net = fast_net();
        let _a = net.register("a");
        let b = net.register("b");
        net.install_faults(FaultPlan::new().crash("b", Duration::ZERO, Duration::from_secs(3600)));
        net.send("a", "b", b"dropped".to_vec()).unwrap();
        assert!(b.recv_timeout(Duration::from_millis(100)).is_err());
        assert_eq!(net.stats().faulted, 1);
        assert!(net.node_crashed("b"));
        assert!(!net.node_crashed("a"));
        net.clear_faults();
        net.send("a", "b", b"through".to_vec()).unwrap();
        assert!(b.recv_timeout(Duration::from_secs(2)).is_ok());
    }

    #[test]
    fn identical_seeds_reproduce_loss_pattern() {
        let lossy = LinkConfig {
            base_latency: Duration::ZERO,
            jitter: Duration::ZERO,
            bandwidth_bps: None,
            loss_probability: 0.3,
        };
        let run = |seed: u64| {
            let net = SimNetwork::with_seed(SimClock::with_speedup(1000.0), lossy, seed);
            let _a = net.register("a");
            let _b = net.register("b");
            for _ in 0..100 {
                net.send("a", "b", vec![0]).unwrap();
            }
            net.stats().lost
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8), "distinct seeds should diverge");
    }

    #[test]
    #[should_panic(expected = "fault plan must be valid")]
    fn installing_inverted_window_panics() {
        use crate::fault::FaultPlan;
        let net = fast_net();
        let _x = net.register("x");
        net.install_faults(FaultPlan::new().crash("x", Duration::from_secs(2), Duration::ZERO));
    }

    #[test]
    #[should_panic(expected = "fault plan must be valid")]
    fn installing_against_unknown_node_panics() {
        // `install_faults` shares `try_install_faults`' validation —
        // including the topology check — so a typo'd node name is a
        // programming error, not a window that silently never fires.
        use crate::fault::FaultPlan;
        let net = fast_net();
        net.install_faults(FaultPlan::new().crash("ghost", Duration::ZERO, Duration::from_secs(1)));
    }

    #[test]
    fn try_install_rejects_bad_shape_and_unknown_nodes() {
        use crate::fault::{FaultPlan, FaultPlanError};
        let net = fast_net();
        let _a = net.register("a");
        let _b = net.register("b");
        // Shape error: typed, nothing installed.
        let inverted = FaultPlan::new().crash("a", Duration::from_secs(2), Duration::ZERO);
        assert!(matches!(
            net.try_install_faults(inverted),
            Err(FaultPlanError::EmptyWindow { .. })
        ));
        assert!(net.fault_plan().is_none());
        // Topology error: the node name is not a registered endpoint.
        let ghost = FaultPlan::new().blackhole("ghost", Duration::ZERO, Duration::from_secs(1));
        assert!(matches!(
            net.try_install_faults(ghost),
            Err(FaultPlanError::UnknownNode { node, .. }) if node == "ghost"
        ));
        assert!(net.fault_plan().is_none());
        // A well-formed plan over registered endpoints installs.
        let good = FaultPlan::new().crash("b", Duration::ZERO, Duration::from_secs(1));
        net.try_install_faults(good).unwrap();
        assert!(net.fault_plan().is_some());
    }

    #[test]
    fn obs_defaults_to_disabled_and_installs() {
        let net = fast_net();
        assert!(!net.obs_on());
        assert!(!net.obs().enabled());
        let _a = net.register("a");
        let _b = net.register("b");
        // Sends without a bundle record nothing and cost one flag load.
        net.send("a", "b", vec![0u8; 10]).unwrap();
        assert!(net.obs().render_prometheus().is_empty());

        net.install_obs(hammer_obs::Obs::new());
        assert!(net.obs_on());
        net.send("a", "b", vec![0u8; 64]).unwrap();
        net.send("a", "b", vec![0u8; 36]).unwrap();
        let obs = net.obs();
        let bytes = obs
            .registry()
            .counter_with("hammer_net_link_bytes_total", &[("from", "a"), ("to", "b")]);
        assert_eq!(bytes.value(), 100);
    }

    #[test]
    fn obs_counts_fault_drops() {
        use crate::fault::FaultPlan;
        let net = fast_net();
        let _a = net.register("a");
        let _b = net.register("b");
        net.install_obs(hammer_obs::Obs::new());
        net.install_faults(FaultPlan::new().crash("b", Duration::ZERO, Duration::from_secs(3600)));
        net.send("a", "b", vec![1]).unwrap();
        let dropped = net
            .obs()
            .registry()
            .counter_with("hammer_net_dropped_total", &[("reason", "fault")]);
        assert_eq!(dropped.value(), 1);
    }

    #[test]
    fn fault_observer_journals_transitions() {
        use crate::fault::FaultPlan;
        use hammer_obs::EventKind;
        // A generous window (50–100 ms of wall time) so thread-spawn and
        // setup overhead on a busy 1-core host cannot outrun it.
        let clock = SimClock::with_speedup(100.0);
        let net = SimNetwork::new(clock.clone(), LinkConfig::ideal());
        net.install_obs(hammer_obs::Obs::new());
        let _n = net.register("n");
        net.install_faults(FaultPlan::new().crash(
            "n",
            Duration::from_secs(5),
            Duration::from_secs(10),
        ));
        let mut observer = FaultObserver::new(&net);
        observer.poll(); // before the window: nothing active yet
        clock.sleep_until(Duration::from_secs(7));
        observer.poll(); // inside: enter
        assert_eq!(observer.active(), ["crash:n"]);
        clock.sleep_until(Duration::from_secs(12));
        observer.poll(); // after: exit
        assert!(observer.active().is_empty());
        let journal = net.obs().journal().clone();
        assert_eq!(journal.count_of(EventKind::FaultEnter), 1);
        assert_eq!(journal.count_of(EventKind::FaultExit), 1);
        assert_eq!(
            net.obs()
                .registry()
                .gauge("hammer_net_fault_windows_active")
                .value(),
            0
        );
    }

    #[test]
    fn shutdown_and_join_is_deterministic_and_idempotent() {
        let net = fast_net();
        let _a = net.register("a");
        let _b = net.register("b");
        net.send("a", "b", b"in flight".to_vec()).unwrap();
        // When this returns the scheduler thread has been joined — gone
        // *now*, not within a poll tick — and sends fail loudly.
        net.shutdown_and_join();
        assert_eq!(net.send("a", "b", vec![0]), Err(NetError::Shutdown));
        // Idempotent.
        net.shutdown_and_join();
    }

    #[test]
    fn endpoint_names_sorted() {
        let net = fast_net();
        let _c = net.register("c");
        let _a = net.register("a");
        let _b = net.register("b");
        assert_eq!(net.endpoint_names(), vec!["a", "b", "c"]);
    }
}
