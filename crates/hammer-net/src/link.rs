//! Link quality configuration: latency, jitter, bandwidth, loss.

use std::time::Duration;

use rand::Rng;

/// Describes the quality of a network link in *simulated* time.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkConfig {
    /// Base one-way propagation delay.
    pub base_latency: Duration,
    /// Maximum uniform jitter added on top of the base latency.
    pub jitter: Duration,
    /// Link bandwidth in bytes per simulated second; `None` means infinite.
    pub bandwidth_bps: Option<u64>,
    /// Probability in `[0, 1]` that a message is silently dropped.
    pub loss_probability: f64,
}

impl LinkConfig {
    /// A typical datacenter LAN: 0.5 ms ± 0.2 ms, 1 Gbps, no loss.
    pub fn lan() -> Self {
        LinkConfig {
            base_latency: Duration::from_micros(500),
            jitter: Duration::from_micros(200),
            bandwidth_bps: Some(125_000_000),
            loss_probability: 0.0,
        }
    }

    /// The paper's testbed: ~100 Mbps links between cloud instances,
    /// ~1 ms ± 0.5 ms latency.
    pub fn cloud_100mbps() -> Self {
        LinkConfig {
            base_latency: Duration::from_millis(1),
            jitter: Duration::from_micros(500),
            bandwidth_bps: Some(12_500_000),
            loss_probability: 0.0,
        }
    }

    /// A wide-area link: 40 ms ± 10 ms, 50 Mbps, 0.1% loss.
    pub fn wan() -> Self {
        LinkConfig {
            base_latency: Duration::from_millis(40),
            jitter: Duration::from_millis(10),
            bandwidth_bps: Some(6_250_000),
            loss_probability: 0.001,
        }
    }

    /// An ideal link with zero delay and no loss, for pure-logic tests.
    pub fn ideal() -> Self {
        LinkConfig {
            base_latency: Duration::ZERO,
            jitter: Duration::ZERO,
            bandwidth_bps: None,
            loss_probability: 0.0,
        }
    }

    /// Validates the configuration, returning a description of the first
    /// problem found.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..=1.0).contains(&self.loss_probability) {
            return Err(format!(
                "loss_probability must be in [0, 1], got {}",
                self.loss_probability
            ));
        }
        if self.bandwidth_bps == Some(0) {
            return Err("bandwidth_bps must be positive when set".to_owned());
        }
        Ok(())
    }

    /// Samples the total transfer delay for a message of `size` bytes:
    /// propagation (base + jitter) plus serialisation (size / bandwidth).
    pub fn sample_delay<R: Rng + ?Sized>(&self, size: usize, rng: &mut R) -> Duration {
        let jitter = if self.jitter.is_zero() {
            Duration::ZERO
        } else {
            self.jitter.mul_f64(rng.gen::<f64>())
        };
        let serialization = match self.bandwidth_bps {
            Some(bps) => Duration::from_secs_f64(size as f64 / bps as f64),
            None => Duration::ZERO,
        };
        self.base_latency + jitter + serialization
    }

    /// Samples whether this message is lost.
    pub fn sample_loss<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        self.loss_probability > 0.0 && rng.gen::<f64>() < self.loss_probability
    }
}

impl Default for LinkConfig {
    fn default() -> Self {
        Self::cloud_100mbps()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn presets_validate() {
        for cfg in [
            LinkConfig::lan(),
            LinkConfig::cloud_100mbps(),
            LinkConfig::wan(),
            LinkConfig::ideal(),
        ] {
            cfg.validate().unwrap();
        }
    }

    #[test]
    fn validate_rejects_bad_loss() {
        let cfg = LinkConfig {
            loss_probability: 1.5,
            ..LinkConfig::lan()
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn validate_rejects_zero_bandwidth() {
        let cfg = LinkConfig {
            bandwidth_bps: Some(0),
            ..LinkConfig::lan()
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn delay_includes_serialization() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let cfg = LinkConfig {
            base_latency: Duration::ZERO,
            jitter: Duration::ZERO,
            bandwidth_bps: Some(1_000_000), // 1 MB/s
            loss_probability: 0.0,
        };
        let d = cfg.sample_delay(500_000, &mut rng); // 0.5 MB -> 0.5 s
        assert!((d.as_secs_f64() - 0.5).abs() < 1e-9, "d = {d:?}");
    }

    #[test]
    fn delay_bounded_by_jitter() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let cfg = LinkConfig {
            base_latency: Duration::from_millis(10),
            jitter: Duration::from_millis(5),
            bandwidth_bps: None,
            loss_probability: 0.0,
        };
        for _ in 0..100 {
            let d = cfg.sample_delay(100, &mut rng);
            assert!(d >= Duration::from_millis(10));
            assert!(d <= Duration::from_millis(15));
        }
    }

    #[test]
    fn ideal_link_has_zero_delay() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        assert_eq!(
            LinkConfig::ideal().sample_delay(1 << 20, &mut rng),
            Duration::ZERO
        );
    }

    #[test]
    fn loss_rate_approximates_probability() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        let cfg = LinkConfig {
            loss_probability: 0.25,
            ..LinkConfig::ideal()
        };
        let lost = (0..10_000).filter(|_| cfg.sample_loss(&mut rng)).count();
        let rate = lost as f64 / 10_000.0;
        assert!((rate - 0.25).abs() < 0.03, "rate = {rate}");
    }

    #[test]
    fn zero_loss_never_drops() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        let cfg = LinkConfig::lan();
        assert!((0..1000).all(|_| !cfg.sample_loss(&mut rng)));
    }
}
