//! Seeded randomized fault-schedule generation ("chaos") and schedule
//! shrinking.
//!
//! PR 2's [`crate::FaultPlan`] windows are hand-written: they only probe
//! the handful of schedules someone thought to script. This module
//! *generates* schedules instead: [`ChaosSchedule::generate`] composes
//! randomized crash / blackhole / partition / latency-spike windows over
//! a set of discovered fault targets (a chain's ingress and sealer
//! nodes), under overlap rules that guarantee the result passes
//! [`crate::FaultPlan::validate`] — every generated plan is installable
//! and every run under it is reproducible from `(seed, targets, config)`
//! alone.
//!
//! When a generated schedule makes a run violate an invariant, the
//! schedule itself is the repro — but a 6-window schedule is a poor bug
//! report. [`ChaosSchedule::shrink_to_failing_prefix`] re-runs the
//! failing predicate on successively longer prefixes (windows ordered by
//! start time) and returns the shortest one that still fails, the
//! property-testing shrink idiom applied to fault schedules.

use std::time::Duration;

// One-stop prelude: a scenario layer composing generated schedules with
// scripted windows imports `hammer_net::chaos` alone — the underlying
// fault-plan vocabulary is re-exported here next to the generator.
pub use crate::fault::{Fault, FaultPlan, FaultPlanError, FaultWindow, NodeFault};

/// Fault targets discovered from a deployed chain: the nodes that accept
/// client traffic and the nodes that drive block/epoch production.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ChaosTargets {
    /// Endpoints accepting client submissions (`SimChain::ingress_nodes`).
    pub ingress: Vec<String>,
    /// Endpoints driving sealing (`SimChain::sealer_nodes`).
    pub sealers: Vec<String>,
}

impl ChaosTargets {
    /// Builds targets from the two discovery lists.
    pub fn new(ingress: Vec<String>, sealers: Vec<String>) -> Self {
        ChaosTargets { ingress, sealers }
    }

    /// Every distinct target node, ingress first, insertion order kept.
    pub fn all(&self) -> Vec<String> {
        let mut all: Vec<String> = Vec::with_capacity(self.ingress.len() + self.sealers.len());
        for name in self.ingress.iter().chain(self.sealers.iter()) {
            if !all.contains(name) {
                all.push(name.clone());
            }
        }
        all
    }

    /// Whether there is anything to fault at all.
    pub fn is_empty(&self) -> bool {
        self.ingress.is_empty() && self.sealers.is_empty()
    }
}

/// Bounds for schedule generation.
///
/// The defaults describe a 20-second-horizon run: up to four windows of
/// 0.5–3 s each, none starting before 1 s (so the run establishes a
/// fault-free baseline) and none extending past 75 % of the horizon (so
/// in-flight transactions always get a recovery tail to commit in —
/// without it, every schedule ending in a crash would "violate" the
/// accounting identity with timeouts that are really just truncation).
#[derive(Clone, Debug, PartialEq)]
pub struct ChaosConfig {
    /// Total scheduled run length the plan must fit inside.
    pub horizon: Duration,
    /// Upper bound on the number of generated windows (at least one is
    /// always attempted).
    pub max_windows: usize,
    /// Shortest window the generator may emit.
    pub min_window: Duration,
    /// Longest window the generator may emit.
    pub max_window: Duration,
    /// Quiet lead-in: no window starts before this.
    pub lead_in: Duration,
    /// Fraction of the horizon tail kept fault-free for recovery.
    pub settle_fraction: f64,
    /// Whether partition windows may be generated (needs ≥ 2 targets).
    pub allow_partitions: bool,
    /// Largest extra delay a latency-spike window may add.
    pub max_spike: Duration,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            horizon: Duration::from_secs(20),
            max_windows: 4,
            min_window: Duration::from_millis(500),
            max_window: Duration::from_secs(3),
            lead_in: Duration::from_secs(1),
            settle_fraction: 0.25,
            allow_partitions: true,
            max_spike: Duration::from_millis(200),
        }
    }
}

/// A generated, guaranteed-valid fault schedule plus its provenance.
#[derive(Clone, Debug)]
pub struct ChaosSchedule {
    seed: u64,
    plan: FaultPlan,
}

impl ChaosSchedule {
    /// Generates a schedule from `seed` over the discovered `targets`.
    ///
    /// Composition rules keeping every output valid and meaningful:
    ///
    /// * windows are quantized to a 100 ms grid inside
    ///   `[lead_in, horizon·(1−settle_fraction))`;
    /// * no two same-kind state faults (crash/crash, blackhole/blackhole)
    ///   ever overlap on one node — candidates violating this are
    ///   re-drawn, so [`FaultPlan::validate`] holds by construction
    ///   (cross-kind overlap and stacking latency spikes stay possible:
    ///   they are defined behaviour worth probing);
    /// * only discovered target names are referenced, so
    ///   [`FaultPlan::validate_against`] the deployed topology holds too;
    /// * windows are emitted sorted by start time, which is what makes
    ///   prefix shrinking meaningful.
    ///
    /// With empty `targets` the schedule is empty (nothing to fault).
    pub fn generate(seed: u64, targets: &ChaosTargets, config: &ChaosConfig) -> Self {
        let mut rng = SplitMix64::new(seed);
        let nodes = targets.all();
        let mut windows: Vec<FaultWindow> = Vec::new();
        if !nodes.is_empty() {
            let fault_tail = config
                .horizon
                .mul_f64((1.0 - config.settle_fraction).max(0.0));
            let count = 1 + (rng.next() as usize) % config.max_windows.max(1);
            'windows: for _ in 0..count {
                for _retry in 0..16 {
                    let Some(candidate) = draw_window(&mut rng, &nodes, config, fault_tail) else {
                        break 'windows; // horizon too tight for any window
                    };
                    if !conflicts(&candidate, &windows) {
                        windows.push(candidate);
                        break;
                    }
                }
            }
        }
        windows.sort_by_key(|w| w.start);
        let mut plan = FaultPlan::new();
        for w in windows {
            plan = plan.with_window(w);
        }
        debug_assert!(plan.validate().is_ok());
        ChaosSchedule { seed, plan }
    }

    /// The seed the schedule was generated from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The generated plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Consumes the schedule, yielding the plan for installation.
    pub fn into_plan(self) -> FaultPlan {
        self.plan
    }

    /// Minimizes a failing schedule: returns the shortest prefix of
    /// `plan`'s windows (in order, so sorted-by-start for generated
    /// plans) on which `fails` still returns `true`, re-running the
    /// predicate once per prefix length from the empty plan upward.
    /// Returns `None` when not even the full plan fails — the original
    /// failure did not reproduce.
    ///
    /// The predicate typically re-runs a whole evaluation under the
    /// candidate plan and re-checks the violated invariant, so expect
    /// one evaluation per window plus one for the empty plan.
    pub fn shrink_to_failing_prefix(
        plan: &FaultPlan,
        mut fails: impl FnMut(&FaultPlan) -> bool,
    ) -> Option<FaultPlan> {
        for len in 0..=plan.windows().len() {
            let mut prefix = FaultPlan::new();
            for w in &plan.windows()[..len] {
                prefix = prefix.with_window(w.clone());
            }
            if fails(&prefix) {
                return Some(prefix);
            }
        }
        None
    }
}

/// Draws one candidate window; `None` when the horizon leaves no room.
fn draw_window(
    rng: &mut SplitMix64,
    nodes: &[String],
    config: &ChaosConfig,
    fault_tail: Duration,
) -> Option<FaultWindow> {
    const GRID_MS: u64 = 100;
    let min_ms = config.min_window.as_millis().max(1) as u64;
    let max_ms = (config.max_window.as_millis() as u64).max(min_ms);
    let lead_ms = config.lead_in.as_millis() as u64;
    let tail_ms = fault_tail.as_millis() as u64;
    let duration_ms = quantize(min_ms + rng.next() % (max_ms - min_ms + 1), GRID_MS).max(GRID_MS);
    let latest_start = tail_ms.checked_sub(duration_ms)?;
    if latest_start < lead_ms {
        return None;
    }
    let start_ms = quantize(lead_ms + rng.next() % (latest_start - lead_ms + 1), GRID_MS);
    let start = Duration::from_millis(start_ms.max(lead_ms));
    let end = start + Duration::from_millis(duration_ms);
    let node = nodes[(rng.next() as usize) % nodes.len()].clone();
    let partitions_possible = config.allow_partitions && nodes.len() >= 2;
    let shapes = if partitions_possible { 4 } else { 3 };
    let plan = match rng.next() % shapes {
        0 => FaultPlan::new().crash(&node, start, end),
        1 => FaultPlan::new().blackhole(&node, start, end),
        2 => {
            let spike_ms = (config.max_spike.as_millis() as u64).max(1);
            let extra = Duration::from_millis(1 + rng.next() % spike_ms);
            if rng.next().is_multiple_of(2) {
                FaultPlan::new().latency_spike_on(&node, extra, start, end)
            } else {
                FaultPlan::new().latency_spike(extra, start, end)
            }
        }
        _ => {
            // Random two-group split: shuffle, then cut at 1..len-1.
            let mut shuffled: Vec<&str> = nodes.iter().map(String::as_str).collect();
            for i in (1..shuffled.len()).rev() {
                shuffled.swap(i, (rng.next() as usize) % (i + 1));
            }
            let cut = 1 + (rng.next() as usize) % (shuffled.len() - 1);
            let (left, right) = shuffled.split_at(cut);
            FaultPlan::new().partition(&[left, right], start, end)
        }
    };
    plan.windows().first().cloned()
}

/// Whether `candidate` breaks the same-kind/same-node overlap rule
/// against the already-accepted windows — the mirror of
/// [`FaultPlan::validate`]'s `ContradictoryOverlap` check.
fn conflicts(candidate: &FaultWindow, accepted: &[FaultWindow]) -> bool {
    let state_target = |fault: &Fault| match fault {
        Fault::Crash { node } => Some((0u8, node.clone())),
        Fault::Blackhole { node } => Some((1u8, node.clone())),
        _ => None,
    };
    let Some(key) = state_target(&candidate.fault) else {
        return false;
    };
    accepted.iter().any(|w| {
        state_target(&w.fault) == Some(key.clone())
            && candidate.start < w.end
            && w.start < candidate.end
    })
}

fn quantize(value: u64, grid: u64) -> u64 {
    (value / grid) * grid
}

/// Sebastiano Vigna's SplitMix64: tiny, seedable, and good enough for
/// schedule composition (the evaluation's own determinism comes from the
/// sim clock and the network seed, not from this stream).
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn targets() -> ChaosTargets {
        ChaosTargets::new(
            vec!["ingress-0".into(), "ingress-1".into()],
            vec!["sealer-0".into(), "ingress-0".into()],
        )
    }

    #[test]
    fn targets_dedup_and_keep_order() {
        let t = targets();
        assert_eq!(t.all(), ["ingress-0", "ingress-1", "sealer-0"]);
        assert!(!t.is_empty());
        assert!(ChaosTargets::default().is_empty());
    }

    #[test]
    fn generated_schedules_are_always_valid() {
        let t = targets();
        let cfg = ChaosConfig::default();
        let topology = t.all();
        for seed in 0..200u64 {
            let schedule = ChaosSchedule::generate(seed, &t, &cfg);
            let plan = schedule.plan();
            plan.validate()
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            plan.validate_against(&topology)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert!(!plan.is_empty(), "seed {seed} generated no windows");
            // Windows honour the lead-in and the recovery tail.
            let tail = cfg.horizon.mul_f64(1.0 - cfg.settle_fraction);
            for w in plan.windows() {
                assert!(w.start >= cfg.lead_in, "seed {seed}: {w:?}");
                assert!(w.end <= tail, "seed {seed}: {w:?}");
                assert!(w.duration() >= Duration::from_millis(100));
            }
            // Sorted by start: prefix shrinking is chronological.
            let starts: Vec<_> = plan.windows().iter().map(|w| w.start).collect();
            let mut sorted = starts.clone();
            sorted.sort();
            assert_eq!(starts, sorted);
        }
    }

    #[test]
    fn same_seed_same_schedule_different_seed_diverges() {
        let t = targets();
        let cfg = ChaosConfig::default();
        let a = ChaosSchedule::generate(42, &t, &cfg);
        let b = ChaosSchedule::generate(42, &t, &cfg);
        assert_eq!(a.plan(), b.plan());
        assert_eq!(a.seed(), 42);
        // At least one of a handful of other seeds must differ (the
        // space of schedules is large; all-equal means a broken RNG).
        assert!(
            (43..48u64).any(|s| ChaosSchedule::generate(s, &t, &cfg).plan() != a.plan()),
            "every seed produced the identical schedule"
        );
    }

    #[test]
    fn empty_targets_generate_empty_plans() {
        let schedule =
            ChaosSchedule::generate(7, &ChaosTargets::default(), &ChaosConfig::default());
        assert!(schedule.plan().is_empty());
    }

    #[test]
    fn tight_horizon_generates_nothing_rather_than_invalid_windows() {
        let cfg = ChaosConfig {
            horizon: Duration::from_secs(1),
            ..ChaosConfig::default()
        };
        for seed in 0..20u64 {
            let schedule = ChaosSchedule::generate(seed, &targets(), &cfg);
            schedule.plan().validate().unwrap();
        }
    }

    #[test]
    fn shrinker_finds_the_smallest_failing_prefix() {
        let plan = FaultPlan::new()
            .crash("a", Duration::from_secs(1), Duration::from_secs(2))
            .blackhole("b", Duration::from_secs(3), Duration::from_secs(4))
            .crash("a", Duration::from_secs(5), Duration::from_secs(6))
            .latency_spike(
                Duration::from_millis(50),
                Duration::from_secs(7),
                Duration::from_secs(8),
            );
        // "Fails" whenever the plan contains the second crash on `a` —
        // the minimal failing prefix is the first three windows.
        let mut evaluations = 0usize;
        let shrunk = ChaosSchedule::shrink_to_failing_prefix(&plan, |p| {
            evaluations += 1;
            p.windows()
                .iter()
                .filter(|w| matches!(&w.fault, Fault::Crash { node } if node == "a"))
                .count()
                >= 2
        })
        .expect("full plan fails");
        assert_eq!(shrunk.windows().len(), 3);
        assert_eq!(evaluations, 4, "prefixes 0..=3 evaluated once each");

        // A predicate that never fails yields None.
        assert!(ChaosSchedule::shrink_to_failing_prefix(&plan, |_| false).is_none());

        // A failure independent of the plan shrinks to the empty plan.
        let empty = ChaosSchedule::shrink_to_failing_prefix(&plan, |_| true).unwrap();
        assert!(empty.is_empty());
    }
}
