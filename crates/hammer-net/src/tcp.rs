//! Real TCP transport for the JSON-RPC exchange.
//!
//! Everything else in this crate simulates a network; this module is the
//! one place that opens real sockets. It carries exactly the same
//! JSON-RPC texts as the in-process transport
//! ([`hammer_rpc::transport::RpcServer::handle_bytes_into`] is the shared
//! entry point), framed with the length-prefixed codec from
//! [`hammer_rpc::frame`], so a driver talking to a node over loopback TCP
//! exercises byte-identical wire messages to the in-process path — plus
//! the failure modes only a real socket has: resets, timeouts, and peers
//! that die mid-frame.
//!
//! Failure taxonomy, mirrored into `ChainError` by `hammer-chain`:
//!
//! * [`TcpError::Io`] — connection-level trouble (refused, reset, timed
//!   out, closed). *Transient*: the peer may come back; clients
//!   reconnect with backoff.
//! * [`TcpError::Frame`] — a framing violation ([`FrameError`]). *Fatal
//!   for the connection*: the stream can no longer be trusted, so both
//!   sides drop it on sight.
//!
//! The server is deliberately chain-agnostic: it serves an opaque
//! `Fn(&[u8], &mut String)` handler, so this crate needs no knowledge of
//! chains or RPC method tables.

use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use hammer_rpc::frame::{encode_frame, FrameDecoder, FrameError};
use hammer_rpc::json::Value;
use hammer_rpc::jsonrpc::{RpcError, RpcRequest, RpcResponse};
use parking_lot::Mutex;

/// A raw request handler: receives one request's JSON bytes, appends the
/// response JSON to `out`. [`hammer_rpc::transport::RpcServer::handle_bytes_into`]
/// has exactly this shape.
pub type RawHandler = Arc<dyn Fn(&[u8], &mut String) + Send + Sync>;

/// Why a TCP call or serve step failed.
#[derive(Debug)]
pub enum TcpError {
    /// Connection-level failure: refused, reset, timed out, or closed.
    /// Transient — the peer may return after a restart.
    Io(io::Error),
    /// Length-prefix framing violation. Fatal for the connection: the
    /// byte stream cannot be resynchronised.
    Frame(FrameError),
    /// The peer answered, but with bytes that are not a well-formed
    /// JSON-RPC response (or with a mismatched call id). Fatal for the
    /// connection.
    Protocol(String),
}

impl TcpError {
    /// Whether this error is a protocol violation (fatal) rather than a
    /// connection-level failure (transient).
    pub fn is_protocol(&self) -> bool {
        matches!(self, TcpError::Frame(_) | TcpError::Protocol(_))
    }
}

impl std::fmt::Display for TcpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TcpError::Io(e) => write!(f, "tcp io: {e}"),
            TcpError::Frame(e) => write!(f, "tcp framing: {e}"),
            TcpError::Protocol(msg) => write!(f, "tcp protocol: {msg}"),
        }
    }
}

impl std::error::Error for TcpError {}

impl From<io::Error> for TcpError {
    fn from(e: io::Error) -> Self {
        TcpError::Io(e)
    }
}

impl From<FrameError> for TcpError {
    fn from(e: FrameError) -> Self {
        TcpError::Frame(e)
    }
}

/// Per-connection deadlines for the server side.
#[derive(Clone, Copy, Debug)]
pub struct TcpServerConfig {
    /// Poll quantum for idle reads: how long a connection thread blocks
    /// in `read` before re-checking the shutdown flag. Not a call
    /// deadline — server connections legitimately idle between calls.
    pub read_poll: Duration,
    /// Deadline for writing one response frame; a peer that stops
    /// draining its socket for this long gets disconnected.
    pub write_timeout: Duration,
}

impl Default for TcpServerConfig {
    fn default() -> Self {
        TcpServerConfig {
            read_poll: Duration::from_millis(100),
            write_timeout: Duration::from_secs(5),
        }
    }
}

/// A TCP listener serving length-prefixed JSON-RPC frames.
///
/// One OS thread accepts connections; each connection gets its own
/// thread running a read-decode-dispatch-respond loop against the
/// supplied handler. Dropping the server (or calling
/// [`TcpRpcServer::shutdown_and_join`]) closes the listener, shuts every
/// connection socket, and joins all threads — the same
/// shutdown-AND-join guarantee the in-process kernel gives.
pub struct TcpRpcServer {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    listener: TcpListener,
    conns: Arc<Mutex<Vec<ConnSlot>>>,
    accept_thread: Mutex<Option<std::thread::JoinHandle<()>>>,
    served: Arc<AtomicU64>,
}

struct ConnSlot {
    stream: TcpStream,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl TcpRpcServer {
    /// Binds to `addr` (use port 0 for an ephemeral port, then read
    /// [`TcpRpcServer::local_addr`]) and starts serving `handler`.
    pub fn bind(addr: &str, handler: RawHandler, config: TcpServerConfig) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let conns: Arc<Mutex<Vec<ConnSlot>>> = Arc::new(Mutex::new(Vec::new()));
        let served = Arc::new(AtomicU64::new(0));

        let accept_listener = listener.try_clone()?;
        accept_listener.set_nonblocking(true)?;
        let t_shutdown = shutdown.clone();
        let t_conns = conns.clone();
        let t_served = served.clone();
        let accept_thread = std::thread::Builder::new()
            .name("tcp-rpc-accept".to_owned())
            .spawn(move || {
                accept_loop(
                    accept_listener,
                    handler,
                    config,
                    t_shutdown,
                    t_conns,
                    t_served,
                )
            })?;

        Ok(TcpRpcServer {
            local_addr,
            shutdown,
            listener,
            conns,
            accept_thread: Mutex::new(Some(accept_thread)),
            served,
        })
    }

    /// The bound address (resolves an ephemeral port request).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Total requests dispatched across all connections so far.
    pub fn served(&self) -> u64 {
        self.served.load(Ordering::Relaxed)
    }

    /// Stops accepting, severs every live connection, and joins all
    /// server threads. Idempotent.
    pub fn shutdown_and_join(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Wake connection threads blocked in read immediately.
        for slot in self.conns.lock().iter() {
            let _ = slot.stream.shutdown(Shutdown::Both);
        }
        let accept = self.accept_thread.lock().take();
        if let Some(handle) = accept {
            let _ = handle.join();
        }
        let mut conns = std::mem::take(&mut *self.conns.lock());
        for slot in &mut conns {
            if let Some(handle) = slot.handle.take() {
                let _ = handle.join();
            }
        }
        // Keep the listener alive until here so the port stays ours for
        // the whole server lifetime.
        let _ = &self.listener;
    }
}

impl Drop for TcpRpcServer {
    fn drop(&mut self) {
        self.shutdown_and_join();
    }
}

impl std::fmt::Debug for TcpRpcServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpRpcServer")
            .field("local_addr", &self.local_addr)
            .field("served", &self.served())
            .finish()
    }
}

fn accept_loop(
    listener: TcpListener,
    handler: RawHandler,
    config: TcpServerConfig,
    shutdown: Arc<AtomicBool>,
    conns: Arc<Mutex<Vec<ConnSlot>>>,
    served: Arc<AtomicU64>,
) {
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let conn_stream = match stream.try_clone() {
                    Ok(s) => s,
                    Err(_) => continue,
                };
                let h = handler.clone();
                let s = shutdown.clone();
                let n = served.clone();
                let handle = std::thread::Builder::new()
                    .name("tcp-rpc-conn".to_owned())
                    .spawn(move || conn_loop(stream, h, config, s, n));
                match handle {
                    Ok(handle) => {
                        let mut guard = conns.lock();
                        // Reap finished connections opportunistically so
                        // a long-lived server doesn't accumulate slots.
                        guard.retain_mut(|slot| match &slot.handle {
                            Some(hd) if hd.is_finished() => {
                                if let Some(hd) = slot.handle.take() {
                                    let _ = hd.join();
                                }
                                false
                            }
                            _ => true,
                        });
                        guard.push(ConnSlot {
                            stream: conn_stream,
                            handle: Some(handle),
                        });
                    }
                    Err(_) => drop(conn_stream),
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

fn conn_loop(
    stream: TcpStream,
    handler: RawHandler,
    config: TcpServerConfig,
    shutdown: Arc<AtomicBool>,
    served: Arc<AtomicU64>,
) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(config.read_poll));
    let _ = stream.set_write_timeout(Some(config.write_timeout));
    let mut stream = stream;
    let mut decoder = FrameDecoder::new();
    let mut read_buf = vec![0u8; 64 * 1024];
    let mut resp_buf = String::new();
    let mut wire_buf: Vec<u8> = Vec::new();
    loop {
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        let n = match stream.read(&mut read_buf) {
            Ok(0) => return, // peer closed
            Ok(n) => n,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                continue; // idle poll tick; re-check shutdown
            }
            Err(_) => return, // reset or otherwise dead
        };
        decoder.extend(&read_buf[..n]);
        loop {
            match decoder.next_frame() {
                Ok(Some(frame)) => {
                    served.fetch_add(1, Ordering::Relaxed);
                    resp_buf.clear();
                    handler(&frame, &mut resp_buf);
                    wire_buf.clear();
                    if encode_frame(resp_buf.as_bytes(), &mut wire_buf).is_err() {
                        // Response too large (or empty) to frame: the
                        // connection cannot carry it; drop the peer
                        // rather than desynchronise the stream.
                        let _ = stream.shutdown(Shutdown::Both);
                        return;
                    }
                    if stream.write_all(&wire_buf).is_err() {
                        return;
                    }
                }
                Ok(None) => break,
                Err(_) => {
                    // Framing violation: the stream is garbage from here
                    // on. Close; the client sees a reset/EOF.
                    let _ = stream.shutdown(Shutdown::Both);
                    return;
                }
            }
        }
    }
}

/// Backoff schedule for reconnecting a [`TcpRpcClient`].
///
/// Mirrors `hammer-core`'s `RetryPolicy` shape (that crate sits above
/// this one, so it converts its policy into this struct rather than the
/// transport depending upwards): exponential backoff from
/// `base_backoff`, multiplied by `multiplier` per attempt, capped at
/// `max_backoff`, for at most `max_attempts` connection attempts per
/// call.
#[derive(Clone, Copy, Debug)]
pub struct ReconnectPolicy {
    /// Maximum connection attempts per call (the first try counts).
    pub max_attempts: u32,
    /// Backoff before the second attempt.
    pub base_backoff: Duration,
    /// Multiplier applied per further attempt.
    pub multiplier: f64,
    /// Upper bound on any single backoff.
    pub max_backoff: Duration,
}

impl Default for ReconnectPolicy {
    fn default() -> Self {
        ReconnectPolicy {
            max_attempts: 8,
            base_backoff: Duration::from_millis(20),
            multiplier: 2.0,
            max_backoff: Duration::from_millis(500),
        }
    }
}

impl ReconnectPolicy {
    /// No reconnection: one attempt, fail fast.
    pub fn none() -> Self {
        ReconnectPolicy {
            max_attempts: 1,
            base_backoff: Duration::ZERO,
            multiplier: 1.0,
            max_backoff: Duration::ZERO,
        }
    }

    /// The backoff to sleep after failed attempt number `attempt`
    /// (0-based).
    pub fn backoff_for(&self, attempt: u32) -> Duration {
        let factor = self.multiplier.max(1.0).powi(attempt.min(24) as i32);
        self.base_backoff.mul_f64(factor).min(self.max_backoff)
    }
}

/// Call deadlines for the client side.
#[derive(Clone, Copy, Debug)]
pub struct TcpClientConfig {
    /// Deadline for establishing a connection.
    pub connect_timeout: Duration,
    /// Deadline for reading one response after a request was written.
    pub read_timeout: Duration,
    /// Deadline for writing one request frame.
    pub write_timeout: Duration,
}

impl Default for TcpClientConfig {
    fn default() -> Self {
        TcpClientConfig {
            connect_timeout: Duration::from_secs(2),
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
        }
    }
}

struct ClientConn {
    stream: TcpStream,
    decoder: FrameDecoder,
}

struct ClientInner {
    conn: Option<ClientConn>,
    req_buf: String,
    wire_buf: Vec<u8>,
    read_buf: Vec<u8>,
}

/// A reconnecting JSON-RPC client over TCP.
///
/// Cheap to clone; clones share one connection and serialise their calls
/// over it (one request in flight at a time — the submission worker,
/// monitor, and commit poller each typically hold their own client).
/// When the connection drops mid-call the client reconnects with
/// exponential backoff per [`ReconnectPolicy`] and retries the call, so
/// a node being SIGKILLed and restarted by a supervisor surfaces as a
/// few transient errors rather than a wedged driver.
#[derive(Clone)]
pub struct TcpRpcClient {
    addr: SocketAddr,
    config: TcpClientConfig,
    policy: ReconnectPolicy,
    inner: Arc<Mutex<ClientInner>>,
    next_id: Arc<AtomicU64>,
}

impl std::fmt::Debug for TcpRpcClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpRpcClient")
            .field("addr", &self.addr)
            .finish()
    }
}

impl TcpRpcClient {
    /// A client for `addr`. Does not connect until the first call.
    pub fn new(addr: SocketAddr, config: TcpClientConfig, policy: ReconnectPolicy) -> Self {
        TcpRpcClient {
            addr,
            config,
            policy,
            inner: Arc::new(Mutex::new(ClientInner {
                conn: None,
                req_buf: String::new(),
                wire_buf: Vec::new(),
                read_buf: vec![0u8; 64 * 1024],
            })),
            next_id: Arc::new(AtomicU64::new(1)),
        }
    }

    /// The server address this client targets.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Calls `method` with `params`, reconnecting with backoff on
    /// connection-level failures. Returns the RPC-level outcome
    /// (`Ok`/`Err(RpcError)`) or a [`TcpError`] when the transport gave
    /// out.
    pub fn call(&self, method: &str, params: Value) -> Result<Result<Value, RpcError>, TcpError> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let req = RpcRequest {
            id,
            method: method.to_owned(),
            params,
        };
        let mut inner = self.inner.lock();
        let mut last_err: Option<TcpError> = None;
        for attempt in 0..self.policy.max_attempts.max(1) {
            if attempt > 0 {
                std::thread::sleep(self.policy.backoff_for(attempt - 1));
            }
            match self.try_call_on_conn(&mut inner, &req) {
                Ok(outcome) => return Ok(outcome),
                Err(err) => {
                    // Any failure invalidates the connection.
                    inner.conn = None;
                    if err.is_protocol() {
                        // The peer is speaking garbage; retrying on a
                        // fresh connection won't make it trustworthy.
                        return Err(err);
                    }
                    last_err = Some(err);
                }
            }
        }
        Err(last_err.unwrap_or_else(|| TcpError::Io(io::Error::other("no attempts made"))))
    }

    /// Drops any cached connection, forcing the next call to redial.
    pub fn disconnect(&self) {
        self.inner.lock().conn = None;
    }

    fn try_call_on_conn(
        &self,
        inner: &mut ClientInner,
        req: &RpcRequest,
    ) -> Result<Result<Value, RpcError>, TcpError> {
        if inner.conn.is_none() {
            let stream = TcpStream::connect_timeout(&self.addr, self.config.connect_timeout)?;
            stream.set_nodelay(true)?;
            stream.set_read_timeout(Some(self.config.read_timeout))?;
            stream.set_write_timeout(Some(self.config.write_timeout))?;
            inner.conn = Some(ClientConn {
                stream,
                decoder: FrameDecoder::new(),
            });
        }
        // Split borrows: buffers and connection live in the same struct.
        let ClientInner {
            conn,
            req_buf,
            wire_buf,
            read_buf,
        } = inner;
        let conn = conn.as_mut().expect("connection established above");
        req_buf.clear();
        req.to_json_into(req_buf);
        wire_buf.clear();
        encode_frame(req_buf.as_bytes(), wire_buf)?;
        conn.stream.write_all(wire_buf)?;
        // One request in flight per connection, so the next frame is our
        // response.
        loop {
            if let Some(frame) = conn.decoder.next_frame()? {
                let resp = RpcResponse::parse_bytes(&frame)
                    .map_err(|e| TcpError::Protocol(format!("bad response: {}", e.message)))?;
                if resp.id != req.id {
                    return Err(TcpError::Protocol(format!(
                        "response id {} does not match request id {}",
                        resp.id, req.id
                    )));
                }
                return Ok(resp.outcome);
            }
            let n = conn.stream.read(read_buf)?;
            if n == 0 {
                return Err(TcpError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-call",
                )));
            }
            conn.decoder.extend(&read_buf[..n]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hammer_rpc::transport::RpcServer;

    fn echo_server() -> (TcpRpcServer, SocketAddr) {
        let rpc = RpcServer::new("echo");
        rpc.register("echo", Ok);
        rpc.register("add", |params| {
            let a = params.get("a").and_then(Value::as_i64).unwrap_or(0);
            let b = params.get("b").and_then(Value::as_i64).unwrap_or(0);
            Ok(Value::from(a + b))
        });
        let handler: RawHandler = Arc::new(move |req, out| rpc.handle_bytes_into(req, out));
        let server =
            TcpRpcServer::bind("127.0.0.1:0", handler, TcpServerConfig::default()).unwrap();
        let addr = server.local_addr();
        (server, addr)
    }

    #[test]
    fn loopback_roundtrip() {
        let (server, addr) = echo_server();
        let client = TcpRpcClient::new(addr, TcpClientConfig::default(), ReconnectPolicy::none());
        let result = client
            .call(
                "add",
                Value::object([("a", Value::from(2)), ("b", Value::from(40))]),
            )
            .unwrap()
            .unwrap();
        assert_eq!(result, Value::Int(42));
        assert_eq!(server.served(), 1);
    }

    #[test]
    fn rpc_errors_pass_through() {
        let (_server, addr) = echo_server();
        let client = TcpRpcClient::new(addr, TcpClientConfig::default(), ReconnectPolicy::none());
        let outcome = client.call("missing", Value::Null).unwrap();
        assert!(outcome.is_err());
    }

    #[test]
    fn sequential_calls_reuse_one_connection() {
        let (server, addr) = echo_server();
        let client = TcpRpcClient::new(addr, TcpClientConfig::default(), ReconnectPolicy::none());
        for i in 0..50i64 {
            let got = client.call("echo", Value::from(i)).unwrap().unwrap();
            assert_eq!(got, Value::Int(i));
        }
        assert_eq!(server.served(), 50);
    }

    #[test]
    fn concurrent_clones_serialise_safely() {
        let (server, addr) = echo_server();
        let client = TcpRpcClient::new(addr, TcpClientConfig::default(), ReconnectPolicy::none());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let c = client.clone();
                std::thread::spawn(move || {
                    for i in 0..25i64 {
                        let v = c.call("echo", Value::from(t * 100 + i)).unwrap().unwrap();
                        assert_eq!(v, Value::Int(t * 100 + i));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(server.served(), 100);
    }

    #[test]
    fn refused_connection_is_transient_io() {
        // Bind and immediately drop to get a port with no listener.
        let addr = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let client = TcpRpcClient::new(
            addr,
            TcpClientConfig {
                connect_timeout: Duration::from_millis(200),
                ..TcpClientConfig::default()
            },
            ReconnectPolicy {
                max_attempts: 2,
                base_backoff: Duration::from_millis(1),
                multiplier: 1.0,
                max_backoff: Duration::from_millis(1),
            },
        );
        let err = client.call("echo", Value::Null).unwrap_err();
        assert!(matches!(err, TcpError::Io(_)));
        assert!(!err.is_protocol());
    }

    #[test]
    fn client_survives_server_restart() {
        let (server, addr) = echo_server();
        let client = TcpRpcClient::new(
            addr,
            TcpClientConfig::default(),
            ReconnectPolicy {
                max_attempts: 40,
                base_backoff: Duration::from_millis(10),
                multiplier: 1.5,
                max_backoff: Duration::from_millis(100),
            },
        );
        assert!(client.call("echo", Value::from(1)).unwrap().is_ok());
        // Kill the server; the established connection dies with it.
        server.shutdown_and_join();
        drop(server);
        // Restart on the same port (loopback; the port was just ours).
        let rpc = RpcServer::new("echo2");
        rpc.register("echo", Ok);
        let handler: RawHandler = Arc::new(move |req, out| rpc.handle_bytes_into(req, out));
        let _server2 =
            TcpRpcServer::bind(&addr.to_string(), handler, TcpServerConfig::default()).unwrap();
        // The reconnecting client rides out the restart.
        let got = client.call("echo", Value::from(2)).unwrap().unwrap();
        assert_eq!(got, Value::Int(2));
    }

    #[test]
    fn garbage_from_client_closes_connection() {
        let (server, addr) = echo_server();
        let mut raw = TcpStream::connect(addr).unwrap();
        // An oversized length header: the server must drop us, not OOM.
        raw.write_all(&u32::MAX.to_be_bytes()).unwrap();
        raw.write_all(&[0u8; 16]).unwrap();
        let mut buf = [0u8; 16];
        // Read returns 0 (EOF) once the server closes; a reset surfaces
        // as an error. Either way the connection is gone.
        raw.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        match raw.read(&mut buf) {
            Ok(0) | Err(_) => {}
            Ok(n) => panic!("server answered {n} bytes to a garbage frame"),
        }
        drop(server);
    }

    #[test]
    fn shutdown_joins_all_threads() {
        let (server, addr) = echo_server();
        let client = TcpRpcClient::new(addr, TcpClientConfig::default(), ReconnectPolicy::none());
        client.call("echo", Value::Null).unwrap().unwrap();
        server.shutdown_and_join();
        // Idempotent, including via Drop.
        server.shutdown_and_join();
        drop(server);
        // The port is released: a fresh bind succeeds.
        let l = TcpListener::bind(addr);
        assert!(l.is_ok(), "port not released after shutdown");
    }

    #[test]
    fn backoff_schedule_is_capped() {
        let p = ReconnectPolicy {
            max_attempts: 10,
            base_backoff: Duration::from_millis(10),
            multiplier: 2.0,
            max_backoff: Duration::from_millis(50),
        };
        assert_eq!(p.backoff_for(0), Duration::from_millis(10));
        assert_eq!(p.backoff_for(1), Duration::from_millis(20));
        assert_eq!(p.backoff_for(2), Duration::from_millis(40));
        assert_eq!(p.backoff_for(3), Duration::from_millis(50));
        assert_eq!(p.backoff_for(30), Duration::from_millis(50));
    }
}
