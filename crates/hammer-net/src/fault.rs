//! Scripted, deterministic fault injection.
//!
//! A [`FaultPlan`] is a list of [`FaultWindow`]s keyed on *simulated* time:
//! between `start` and `end` the window's [`Fault`] is active. Plans are
//! immutable once installed on a [`crate::SimNetwork`], so a run under
//! faults is exactly reproducible — same clock, same seed, same plan, same
//! outcome. Faults compose with the probabilistic [`crate::LinkConfig`]
//! loss/jitter model: a message must first survive the plan (partition,
//! blackhole, crash) and then the link's own loss sample; latency spikes
//! add on top of the link's sampled delay.
//!
//! Four fault shapes cover the scenarios robustness-oriented drivers
//! (Gromit-style) inject:
//!
//! * [`Fault::Crash`] — the node is down: it neither sends, receives, nor
//!   serves requests. Chain simulators additionally stop
//!   producing/endorsing on a crashed node and fail ingress with a
//!   transient error.
//! * [`Fault::Blackhole`] — the node's process is alive but all its
//!   traffic is silently dropped (the classic "switch ate my port"
//!   failure). Ingress to a blackholed node times out at the RPC layer.
//! * [`Fault::Partition`] — endpoints listed in different groups cannot
//!   exchange messages; unlisted endpoints talk to everyone (the same
//!   semantics as [`crate::SimNetwork::partition`], but windowed and
//!   scripted instead of imperative).
//! * [`Fault::LatencySpike`] — every delivery involving the target (or
//!   every delivery, if no target is named) takes `extra` longer.

use std::time::Duration;

use hammer_rpc::json::Value;

/// One fault shape. See the module docs for semantics.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum Fault {
    /// The node is fully down for the window: no ingress, no egress, no
    /// block production.
    Crash {
        /// Endpoint name of the crashed node.
        node: String,
    },
    /// All traffic to and from the node is silently dropped; the node
    /// itself keeps running.
    Blackhole {
        /// Endpoint name of the blackholed node.
        node: String,
    },
    /// Endpoints in different groups cannot exchange messages.
    Partition {
        /// Partition groups; endpoints not listed anywhere are unaffected.
        groups: Vec<Vec<String>>,
    },
    /// Deliveries take `extra` longer than the link alone would impose.
    LatencySpike {
        /// Additional one-way delay (simulated time).
        extra: Duration,
        /// When set, only deliveries to or from this endpoint are slowed;
        /// when `None` the spike is network-wide.
        node: Option<String>,
    },
}

/// A fault active during `[start, end)` of simulated time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultWindow {
    /// Human-readable label, surfaced in per-window report breakdowns.
    pub label: String,
    /// Window start (inclusive), simulated time since run start.
    pub start: Duration,
    /// Window end (exclusive), simulated time since run start.
    pub end: Duration,
    /// The fault active inside the window.
    pub fault: Fault,
}

impl FaultWindow {
    /// Whether `now` falls inside the window.
    pub fn contains(&self, now: Duration) -> bool {
        self.start <= now && now < self.end
    }

    /// Window length.
    pub fn duration(&self) -> Duration {
        self.end.saturating_sub(self.start)
    }
}

/// Why a [`FaultPlan`] failed validation.
///
/// Shape errors ([`FaultPlanError::EmptyWindow`],
/// [`FaultPlanError::AmbiguousPartition`],
/// [`FaultPlanError::ContradictoryOverlap`]) are intrinsic to the plan;
/// [`FaultPlanError::UnknownNode`] only arises from
/// [`FaultPlan::validate_against`], which additionally checks every
/// referenced endpoint against a deployed topology.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaultPlanError {
    /// A window's `start >= end`, so it can never be active.
    EmptyWindow {
        /// Label of the offending window.
        label: String,
    },
    /// A partition window lists the same endpoint in more than one
    /// group, so its side of the partition is undefined.
    AmbiguousPartition {
        /// Label of the offending window.
        label: String,
        /// The endpoint listed twice.
        node: String,
    },
    /// Two same-kind state faults (crash/crash or blackhole/blackhole)
    /// target the same node in overlapping windows. The overlap is
    /// redundant at best and contradicts per-window attribution: a
    /// schedule should merge the windows instead.
    ContradictoryOverlap {
        /// Label of the earlier window.
        first: String,
        /// Label of the overlapping window.
        second: String,
        /// The doubly-faulted node.
        node: String,
    },
    /// The plan references an endpoint the deployed topology does not
    /// contain, so the fault would silently never fire.
    UnknownNode {
        /// Label of the offending window.
        label: String,
        /// The unknown endpoint name.
        node: String,
    },
}

impl std::fmt::Display for FaultPlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultPlanError::EmptyWindow { label } => {
                write!(f, "fault window '{label}' is empty or inverted")
            }
            FaultPlanError::AmbiguousPartition { label, node } => {
                write!(
                    f,
                    "partition window '{label}' lists '{node}' in more than one group"
                )
            }
            FaultPlanError::ContradictoryOverlap {
                first,
                second,
                node,
            } => write!(
                f,
                "windows '{first}' and '{second}' apply the same fault to '{node}' in \
                 overlapping intervals"
            ),
            FaultPlanError::UnknownNode { label, node } => {
                write!(f, "fault window '{label}' references unknown node '{node}'")
            }
        }
    }
}

impl std::error::Error for FaultPlanError {}

/// How a node is currently impaired, from the viewpoint of a client
/// calling into it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NodeFault {
    /// The node's process is down (crash window active).
    Crashed,
    /// The node runs but its network traffic is dropped (blackhole).
    Unreachable,
}

/// A scripted schedule of fault windows.
///
/// Build one with the fluent helpers, then install it on a network with
/// [`crate::SimNetwork::install_faults`]:
///
/// ```
/// use std::time::Duration;
/// use hammer_net::fault::FaultPlan;
///
/// let plan = FaultPlan::new()
///     .crash("eth-node-0", Duration::from_secs(1), Duration::from_secs(3))
///     .latency_spike(
///         Duration::from_millis(250),
///         Duration::from_secs(4),
///         Duration::from_secs(5),
///     );
/// assert_eq!(plan.windows().len(), 2);
/// assert!(plan.crashed("eth-node-0", Duration::from_secs(2)));
/// assert!(!plan.crashed("eth-node-0", Duration::from_secs(3)));
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    windows: Vec<FaultWindow>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an arbitrary window.
    pub fn with_window(mut self, window: FaultWindow) -> Self {
        self.windows.push(window);
        self
    }

    /// Crashes `node` during `[start, end)`.
    pub fn crash(self, node: &str, start: Duration, end: Duration) -> Self {
        self.with_window(FaultWindow {
            label: format!("crash:{node}"),
            start,
            end,
            fault: Fault::Crash {
                node: node.to_owned(),
            },
        })
    }

    /// Blackholes `node` during `[start, end)`.
    pub fn blackhole(self, node: &str, start: Duration, end: Duration) -> Self {
        self.with_window(FaultWindow {
            label: format!("blackhole:{node}"),
            start,
            end,
            fault: Fault::Blackhole {
                node: node.to_owned(),
            },
        })
    }

    /// Partitions the listed groups from each other during `[start, end)`.
    pub fn partition(self, groups: &[&[&str]], start: Duration, end: Duration) -> Self {
        let groups: Vec<Vec<String>> = groups
            .iter()
            .map(|g| g.iter().map(|s| (*s).to_owned()).collect())
            .collect();
        self.with_window(FaultWindow {
            label: "partition".to_owned(),
            start,
            end,
            fault: Fault::Partition { groups },
        })
    }

    /// Adds `extra` delay to every delivery during `[start, end)`.
    pub fn latency_spike(self, extra: Duration, start: Duration, end: Duration) -> Self {
        self.with_window(FaultWindow {
            label: format!("latency:+{}ms", extra.as_millis()),
            start,
            end,
            fault: Fault::LatencySpike { extra, node: None },
        })
    }

    /// Adds `extra` delay to deliveries touching `node` during
    /// `[start, end)`.
    pub fn latency_spike_on(
        self,
        node: &str,
        extra: Duration,
        start: Duration,
        end: Duration,
    ) -> Self {
        self.with_window(FaultWindow {
            label: format!("latency:{node}:+{}ms", extra.as_millis()),
            start,
            end,
            fault: Fault::LatencySpike {
                extra,
                node: Some(node.to_owned()),
            },
        })
    }

    /// All scripted windows, in insertion order.
    pub fn windows(&self) -> &[FaultWindow] {
        &self.windows
    }

    /// Whether the plan schedules any fault at all.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// Labels of every window active at `now`.
    pub fn active_labels(&self, now: Duration) -> Vec<&str> {
        self.windows
            .iter()
            .filter(|w| w.contains(now))
            .map(|w| w.label.as_str())
            .collect()
    }

    /// Validates the plan's shape: every window non-empty, every
    /// partition unambiguous, and no two same-kind state faults
    /// (crash/crash, blackhole/blackhole) overlapping on one node.
    /// Cross-kind overlap stays legal — a crash dominating a concurrent
    /// blackhole is defined behaviour ([`FaultPlan::node_fault`]), and
    /// latency spikes stack by design.
    pub fn validate(&self) -> Result<(), FaultPlanError> {
        for w in &self.windows {
            if w.start >= w.end {
                return Err(FaultPlanError::EmptyWindow {
                    label: w.label.clone(),
                });
            }
            if let Fault::Partition { groups } = &w.fault {
                let mut seen: Vec<&str> = Vec::new();
                for member in groups.iter().flatten() {
                    if seen.contains(&member.as_str()) {
                        return Err(FaultPlanError::AmbiguousPartition {
                            label: w.label.clone(),
                            node: member.clone(),
                        });
                    }
                    seen.push(member);
                }
            }
        }
        let state_target = |fault: &Fault| match fault {
            Fault::Crash { node } => Some((0u8, node.clone())),
            Fault::Blackhole { node } => Some((1u8, node.clone())),
            _ => None,
        };
        for (i, a) in self.windows.iter().enumerate() {
            let Some(key_a) = state_target(&a.fault) else {
                continue;
            };
            for b in &self.windows[i + 1..] {
                if state_target(&b.fault) == Some(key_a.clone())
                    && a.start < b.end
                    && b.start < a.end
                {
                    return Err(FaultPlanError::ContradictoryOverlap {
                        first: a.label.clone(),
                        second: b.label.clone(),
                        node: key_a.1,
                    });
                }
            }
        }
        Ok(())
    }

    /// [`FaultPlan::validate`] plus a topology check: every endpoint the
    /// plan references (crash/blackhole/latency targets, partition group
    /// members) must appear in `topology`, so a typo'd node name fails
    /// loudly instead of producing a fault that never fires.
    pub fn validate_against(&self, topology: &[String]) -> Result<(), FaultPlanError> {
        self.validate()?;
        let known = |name: &str| topology.iter().any(|t| t == name);
        for w in &self.windows {
            let mut referenced: Vec<&str> = Vec::new();
            match &w.fault {
                Fault::Crash { node } | Fault::Blackhole { node } => referenced.push(node),
                Fault::Partition { groups } => {
                    referenced.extend(groups.iter().flatten().map(String::as_str));
                }
                Fault::LatencySpike { node, .. } => {
                    referenced.extend(node.as_deref());
                }
            }
            if let Some(node) = referenced.into_iter().find(|n| !known(n)) {
                return Err(FaultPlanError::UnknownNode {
                    label: w.label.clone(),
                    node: node.to_owned(),
                });
            }
        }
        Ok(())
    }

    /// Whether a crash window covers `node` at `now`.
    pub fn crashed(&self, node: &str, now: Duration) -> bool {
        self.windows
            .iter()
            .any(|w| w.contains(now) && matches!(&w.fault, Fault::Crash { node: n } if n == node))
    }

    /// Whether a blackhole window covers `node` at `now`.
    pub fn blackholed(&self, node: &str, now: Duration) -> bool {
        self.windows.iter().any(|w| {
            w.contains(now) && matches!(&w.fault, Fault::Blackhole { node: n } if n == node)
        })
    }

    /// The strongest impairment on `node` at `now`, if any. A crash
    /// dominates a blackhole when both windows overlap.
    pub fn node_fault(&self, node: &str, now: Duration) -> Option<NodeFault> {
        if self.crashed(node, now) {
            Some(NodeFault::Crashed)
        } else if self.blackholed(node, now) {
            Some(NodeFault::Unreachable)
        } else {
            None
        }
    }

    /// Whether the plan severs the directed link `from -> to` at `now`
    /// (either endpoint crashed or blackholed, or a partition window puts
    /// the endpoints in different groups).
    pub fn link_cut(&self, from: &str, to: &str, now: Duration) -> bool {
        self.windows
            .iter()
            .filter(|w| w.contains(now))
            .any(|w| match &w.fault {
                Fault::Crash { node } | Fault::Blackhole { node } => node == from || node == to,
                Fault::Partition { groups } => {
                    let group_of =
                        |name: &str| groups.iter().position(|g| g.iter().any(|m| m == name));
                    matches!((group_of(from), group_of(to)), (Some(a), Some(b)) if a != b)
                }
                Fault::LatencySpike { .. } => false,
            })
    }

    /// Serialises the plan to a JSON [`Value`] so it can cross an RPC
    /// boundary (a multi-process deployment forwards the driver's plan to
    /// each node-host over the wire). Durations travel as microseconds of
    /// simulated time.
    pub fn to_value(&self) -> Value {
        let windows: Vec<Value> = self
            .windows
            .iter()
            .map(|w| {
                let fault = match &w.fault {
                    Fault::Crash { node } => Value::object([
                        ("kind", Value::from("crash")),
                        ("node", Value::from(node.as_str())),
                    ]),
                    Fault::Blackhole { node } => Value::object([
                        ("kind", Value::from("blackhole")),
                        ("node", Value::from(node.as_str())),
                    ]),
                    Fault::Partition { groups } => Value::object([
                        ("kind", Value::from("partition")),
                        (
                            "groups",
                            Value::Array(
                                groups
                                    .iter()
                                    .map(|g| {
                                        Value::Array(
                                            g.iter().map(|m| Value::from(m.as_str())).collect(),
                                        )
                                    })
                                    .collect(),
                            ),
                        ),
                    ]),
                    Fault::LatencySpike { extra, node } => Value::object([
                        ("kind", Value::from("latency")),
                        ("extra_us", Value::from(extra.as_micros() as u64)),
                        (
                            "node",
                            node.as_deref().map(Value::from).unwrap_or(Value::Null),
                        ),
                    ]),
                };
                Value::object([
                    ("label", Value::from(w.label.as_str())),
                    ("start_us", Value::from(w.start.as_micros() as u64)),
                    ("end_us", Value::from(w.end.as_micros() as u64)),
                    ("fault", fault),
                ])
            })
            .collect();
        Value::object([("windows", Value::Array(windows))])
    }

    /// Parses a plan previously produced by [`FaultPlan::to_value`].
    ///
    /// Returns a human-readable description of the first malformed field;
    /// shape validation ([`FaultPlan::validate`]) is still the caller's
    /// job, exactly as for a locally built plan.
    pub fn from_value(value: &Value) -> Result<FaultPlan, String> {
        let windows = value
            .get("windows")
            .and_then(Value::as_array)
            .ok_or("fault plan: missing 'windows' array")?;
        let mut plan = FaultPlan::new();
        for (i, w) in windows.iter().enumerate() {
            let field = |name: &str| {
                w.get(name)
                    .ok_or_else(|| format!("fault window {i}: missing '{name}'"))
            };
            let us = |name: &str| -> Result<Duration, String> {
                field(name)?
                    .as_u64()
                    .map(Duration::from_micros)
                    .ok_or_else(|| format!("fault window {i}: '{name}' is not an integer"))
            };
            let label = field("label")?
                .as_str()
                .ok_or_else(|| format!("fault window {i}: 'label' is not a string"))?
                .to_owned();
            let fault_v = field("fault")?;
            let str_field = |name: &str| -> Result<String, String> {
                fault_v
                    .get(name)
                    .and_then(Value::as_str)
                    .map(str::to_owned)
                    .ok_or_else(|| format!("fault window {i}: fault '{name}' is not a string"))
            };
            let kind = str_field("kind")?;
            let fault = match kind.as_str() {
                "crash" => Fault::Crash {
                    node: str_field("node")?,
                },
                "blackhole" => Fault::Blackhole {
                    node: str_field("node")?,
                },
                "partition" => {
                    let groups_v = fault_v
                        .get("groups")
                        .and_then(Value::as_array)
                        .ok_or_else(|| format!("fault window {i}: missing 'groups' array"))?;
                    let mut groups = Vec::with_capacity(groups_v.len());
                    for g in groups_v {
                        let members = g
                            .as_array()
                            .ok_or_else(|| format!("fault window {i}: group is not an array"))?
                            .iter()
                            .map(|m| {
                                m.as_str().map(str::to_owned).ok_or_else(|| {
                                    format!("fault window {i}: group member is not a string")
                                })
                            })
                            .collect::<Result<Vec<String>, String>>()?;
                        groups.push(members);
                    }
                    Fault::Partition { groups }
                }
                "latency" => {
                    let extra = fault_v
                        .get("extra_us")
                        .and_then(Value::as_u64)
                        .map(Duration::from_micros)
                        .ok_or_else(|| format!("fault window {i}: 'extra_us' is not an integer"))?;
                    let node =
                        match fault_v.get("node") {
                            None | Some(Value::Null) => None,
                            Some(v) => Some(v.as_str().map(str::to_owned).ok_or_else(|| {
                                format!("fault window {i}: 'node' is not a string")
                            })?),
                        };
                    Fault::LatencySpike { extra, node }
                }
                other => return Err(format!("fault window {i}: unknown fault kind '{other}'")),
            };
            plan = plan.with_window(FaultWindow {
                label,
                start: us("start_us")?,
                end: us("end_us")?,
                fault,
            });
        }
        Ok(plan)
    }

    /// Total extra delay the plan imposes on `from -> to` at `now`.
    /// Overlapping spikes stack.
    pub fn extra_latency(&self, from: &str, to: &str, now: Duration) -> Duration {
        self.windows
            .iter()
            .filter(|w| w.contains(now))
            .filter_map(|w| match &w.fault {
                Fault::LatencySpike { extra, node: None } => Some(*extra),
                Fault::LatencySpike {
                    extra,
                    node: Some(n),
                } if n == from || n == to => Some(*extra),
                _ => None,
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: u64) -> Duration {
        Duration::from_secs(s)
    }

    #[test]
    fn empty_plan_injects_nothing() {
        let plan = FaultPlan::new();
        assert!(plan.is_empty());
        assert!(!plan.link_cut("a", "b", secs(0)));
        assert_eq!(plan.node_fault("a", secs(0)), None);
        assert_eq!(plan.extra_latency("a", "b", secs(0)), Duration::ZERO);
    }

    #[test]
    fn crash_window_is_half_open() {
        let plan = FaultPlan::new().crash("n", secs(1), secs(3));
        assert!(!plan.crashed("n", Duration::from_millis(999)));
        assert!(plan.crashed("n", secs(1)));
        assert!(plan.crashed("n", Duration::from_millis(2999)));
        assert!(!plan.crashed("n", secs(3)));
        assert!(!plan.crashed("other", secs(2)));
    }

    #[test]
    fn crash_cuts_both_directions() {
        let plan = FaultPlan::new().crash("n", secs(1), secs(3));
        assert!(plan.link_cut("n", "peer", secs(2)));
        assert!(plan.link_cut("peer", "n", secs(2)));
        assert!(!plan.link_cut("peer", "other", secs(2)));
    }

    #[test]
    fn blackhole_is_unreachable_not_crashed() {
        let plan = FaultPlan::new().blackhole("n", secs(0), secs(5));
        assert_eq!(plan.node_fault("n", secs(1)), Some(NodeFault::Unreachable));
        assert!(!plan.crashed("n", secs(1)));
        assert!(plan.link_cut("n", "peer", secs(1)));
    }

    #[test]
    fn crash_dominates_blackhole() {
        let plan = FaultPlan::new()
            .blackhole("n", secs(0), secs(5))
            .crash("n", secs(2), secs(3));
        assert_eq!(plan.node_fault("n", secs(1)), Some(NodeFault::Unreachable));
        assert_eq!(plan.node_fault("n", secs(2)), Some(NodeFault::Crashed));
        assert_eq!(plan.node_fault("n", secs(4)), Some(NodeFault::Unreachable));
    }

    #[test]
    fn partition_groups_follow_listing() {
        let plan = FaultPlan::new().partition(&[&["a", "b"], &["c"]], secs(1), secs(2));
        assert!(plan.link_cut("a", "c", Duration::from_millis(1500)));
        assert!(!plan.link_cut("a", "b", Duration::from_millis(1500)));
        // Unlisted endpoints talk to everyone.
        assert!(!plan.link_cut("a", "x", Duration::from_millis(1500)));
        // Outside the window nothing is cut.
        assert!(!plan.link_cut("a", "c", secs(3)));
    }

    #[test]
    fn latency_spikes_stack_and_scope() {
        let plan = FaultPlan::new()
            .latency_spike(Duration::from_millis(100), secs(0), secs(10))
            .latency_spike_on("n", Duration::from_millis(50), secs(0), secs(10));
        assert_eq!(
            plan.extra_latency("n", "peer", secs(5)),
            Duration::from_millis(150)
        );
        assert_eq!(
            plan.extra_latency("a", "b", secs(5)),
            Duration::from_millis(100)
        );
    }

    #[test]
    fn validate_rejects_inverted_windows() {
        let good = FaultPlan::new().crash("n", secs(1), secs(2));
        assert!(good.validate().is_ok());
        let bad = FaultPlan::new().crash("n", secs(2), secs(2));
        assert!(matches!(
            bad.validate(),
            Err(FaultPlanError::EmptyWindow { label }) if label == "crash:n"
        ));
    }

    #[test]
    fn validate_rejects_ambiguous_partitions() {
        let bad = FaultPlan::new().partition(&[&["a", "b"], &["b", "c"]], secs(1), secs(2));
        assert!(matches!(
            bad.validate(),
            Err(FaultPlanError::AmbiguousPartition { node, .. }) if node == "b"
        ));
    }

    #[test]
    fn validate_rejects_same_kind_overlap_on_one_node() {
        let bad = FaultPlan::new()
            .crash("n", secs(1), secs(4))
            .crash("n", secs(3), secs(6));
        assert!(matches!(
            bad.validate(),
            Err(FaultPlanError::ContradictoryOverlap { node, .. }) if node == "n"
        ));
        // Crash-restart on one node (disjoint windows) stays legal, as
        // does the same interval on two different nodes.
        let restart = FaultPlan::new()
            .crash("n", secs(1), secs(3))
            .crash("n", secs(5), secs(7));
        assert!(restart.validate().is_ok());
        let two_nodes =
            FaultPlan::new()
                .blackhole("a", secs(1), secs(4))
                .blackhole("b", secs(1), secs(4));
        assert!(two_nodes.validate().is_ok());
        // Cross-kind overlap is defined behaviour (crash dominates).
        let cross = FaultPlan::new()
            .blackhole("n", secs(0), secs(5))
            .crash("n", secs(2), secs(3));
        assert!(cross.validate().is_ok());
        // Overlapping network-wide latency spikes stack by design.
        let spikes = FaultPlan::new()
            .latency_spike(Duration::from_millis(10), secs(0), secs(5))
            .latency_spike(Duration::from_millis(20), secs(2), secs(7));
        assert!(spikes.validate().is_ok());
    }

    #[test]
    fn validate_against_checks_the_topology() {
        let topology: Vec<String> = ["a", "b", "c"].iter().map(|s| (*s).to_string()).collect();
        let good = FaultPlan::new()
            .crash("a", secs(1), secs(2))
            .partition(&[&["a"], &["b", "c"]], secs(3), secs(4))
            .latency_spike_on("b", Duration::from_millis(5), secs(5), secs(6))
            .latency_spike(Duration::from_millis(5), secs(7), secs(8));
        assert!(good.validate_against(&topology).is_ok());
        let bad = FaultPlan::new().blackhole("ghost", secs(1), secs(2));
        assert!(matches!(
            bad.validate_against(&topology),
            Err(FaultPlanError::UnknownNode { node, .. }) if node == "ghost"
        ));
        let bad_group = FaultPlan::new().partition(&[&["a"], &["ghost"]], secs(1), secs(2));
        assert!(matches!(
            bad_group.validate_against(&topology),
            Err(FaultPlanError::UnknownNode { node, .. }) if node == "ghost"
        ));
    }

    #[test]
    fn json_roundtrip_preserves_every_fault_shape() {
        let plan = FaultPlan::new()
            .crash("a", secs(1), secs(2))
            .blackhole("b", secs(2), secs(3))
            .partition(&[&["a", "b"], &["c"]], secs(3), secs(4))
            .latency_spike(Duration::from_millis(250), secs(4), secs(5))
            .latency_spike_on("c", Duration::from_micros(1500), secs(5), secs(6));
        let value = plan.to_value();
        // Cross a real serialise/parse boundary, as the RPC path would.
        let text = value.to_json();
        let parsed = hammer_rpc::json::Value::parse(&text).unwrap();
        let back = FaultPlan::from_value(&parsed).unwrap();
        assert_eq!(back, plan);
    }

    #[test]
    fn from_value_rejects_malformed_plans() {
        use hammer_rpc::json::Value;
        assert!(FaultPlan::from_value(&Value::Null)
            .unwrap_err()
            .contains("windows"));
        let bad_kind = Value::parse(
            r#"{"windows":[{"label":"x","start_us":0,"end_us":1,
                "fault":{"kind":"meteor","node":"n"}}]}"#,
        )
        .unwrap();
        assert!(FaultPlan::from_value(&bad_kind)
            .unwrap_err()
            .contains("meteor"));
        let missing_node = Value::parse(
            r#"{"windows":[{"label":"x","start_us":0,"end_us":1,
                "fault":{"kind":"crash"}}]}"#,
        )
        .unwrap();
        assert!(FaultPlan::from_value(&missing_node).is_err());
    }

    #[test]
    fn active_labels_report_windows() {
        let plan = FaultPlan::new().crash("n", secs(1), secs(3)).latency_spike(
            Duration::from_millis(10),
            secs(2),
            secs(4),
        );
        assert_eq!(plan.active_labels(secs(0)), Vec::<&str>::new());
        assert_eq!(plan.active_labels(secs(1)), vec!["crash:n"]);
        assert_eq!(
            plan.active_labels(Duration::from_millis(2500)),
            vec!["crash:n", "latency:+10ms"]
        );
    }
}
