//! Simulated network substrate for the Hammer blockchain evaluation
//! framework.
//!
//! The paper's testbed is a 5-node Aliyun ECS cluster with ~100 Mbps links.
//! This crate replaces that hardware with an in-process simulation that the
//! chain simulators and the evaluation driver run on:
//!
//! * [`clock::SimClock`] — a scalable clock. Chain simulators express delays
//!   in *simulated* time (e.g. Ethereum's 15-second block interval) and the
//!   clock maps them onto wall time with a configurable speed-up, so a full
//!   evaluation runs in seconds while inter-system *ratios* are preserved.
//! * [`link::LinkConfig`] — per-link latency, jitter, bandwidth and loss.
//! * [`network::SimNetwork`] — a message bus connecting named endpoints with
//!   per-link delay/loss and partition injection.
//! * [`fault::FaultPlan`] — scripted, clock-driven fault windows (node
//!   crash/restart, blackhole, partition, latency spike) that compose with
//!   the probabilistic link model for robustness evaluations.
//! * [`chaos::ChaosSchedule`] — a seeded generator of valid randomized
//!   fault plans over discovered fault targets, plus a shrinker that
//!   reduces a failing schedule to its smallest failing prefix.
//! * [`tcp`] — the one *real* transport: length-prefixed JSON-RPC over
//!   TCP ([`tcp::TcpRpcServer`] / [`tcp::TcpRpcClient`]), used by the
//!   multi-process deploy mode where each chain node runs as its own OS
//!   process and faults kill real sockets.
//!
//! The network also carries the run's observability bundle
//! ([`SimNetwork::install_obs`]): per-link byte and drop counters are
//! recorded on every send, and every component holding the network
//! (chain simulators, driver, resource monitor) fetches the same
//! [`hammer_obs::Obs`] from it, so instrumentation needs no extra
//! plumbing. [`network::FaultObserver`] turns fault-plan window
//! transitions into journal events.
//!
//! # Example
//!
//! ```
//! use hammer_net::{clock::SimClock, link::LinkConfig, network::SimNetwork};
//! use std::time::Duration;
//!
//! let clock = SimClock::with_speedup(1000.0); // 1000x faster than real time
//! let net = SimNetwork::new(clock.clone(), LinkConfig::lan());
//! let _a = net.register("node-a");
//! let b = net.register("node-b");
//! net.send("node-a", "node-b", b"ping".to_vec()).unwrap();
//! let msg = b.recv_timeout(Duration::from_secs(2)).unwrap();
//! assert_eq!(msg.payload, b"ping");
//! assert_eq!(msg.from, "node-a");
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod chaos;
pub mod clock;
pub mod fault;
pub mod link;
pub mod network;
pub mod tcp;

pub use chaos::{ChaosConfig, ChaosSchedule, ChaosTargets};
pub use clock::SimClock;
pub use fault::{Fault, FaultPlan, FaultPlanError, FaultWindow, NodeFault};
pub use link::LinkConfig;
pub use network::{Endpoint, FaultObserver, Message, NetError, SimNetwork, DEFAULT_NET_SEED};
pub use tcp::{
    RawHandler, ReconnectPolicy, TcpClientConfig, TcpError, TcpRpcClient, TcpRpcServer,
    TcpServerConfig,
};
