//! The JSON workload profile the client parses in the preparation phase
//! (paper §III-B1, step ①).

use hammer_rpc::json::Value;

/// Which generator produces the payloads.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WorkloadKind {
    /// The SmallBank banking workload (the paper's evaluation workload).
    SmallBank,
    /// A YCSB-style key/value workload.
    Ycsb,
}

/// How accounts/keys are picked.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum AccessDistribution {
    /// Uniform over the pool.
    Uniform,
    /// Zipfian with the given skew.
    Zipfian {
        /// Skew parameter (YCSB default 0.99).
        theta: f64,
    },
}

/// A parsed workload profile.
#[derive(Clone, Debug, PartialEq)]
pub struct WorkloadConfig {
    /// Generator to use.
    pub kind: WorkloadKind,
    /// Target chain name.
    pub chain_name: String,
    /// Target contract name.
    pub contract_name: String,
    /// Number of pre-created accounts (the paper seeds 5 000 per shard).
    pub accounts: usize,
    /// Fraction of read-only operations in `[0, 1]`.
    pub read_ratio: f64,
    /// Account/key selection distribution.
    pub distribution: AccessDistribution,
    /// Total transactions to generate.
    pub total_txs: usize,
    /// Number of workload clients.
    pub clients: u32,
    /// Worker threads per client.
    pub threads_per_client: u32,
    /// Initial checking balance per seeded account.
    pub initial_checking: u64,
    /// Initial savings balance per seeded account.
    pub initial_savings: u64,
    /// RNG seed for reproducible generation.
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            kind: WorkloadKind::SmallBank,
            chain_name: "fabric-sim".to_owned(),
            contract_name: "smallbank".to_owned(),
            accounts: 5_000,
            read_ratio: 0.0,
            distribution: AccessDistribution::Uniform,
            total_txs: 10_000,
            clients: 2,
            threads_per_client: 2,
            initial_checking: 1_000_000,
            initial_savings: 1_000_000,
            seed: 42,
        }
    }
}

/// Configuration parse/validation failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConfigError(pub String);

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "workload config error: {}", self.0)
    }
}

impl std::error::Error for ConfigError {}

impl WorkloadConfig {
    /// Validates invariants, returning the first violation.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.accounts == 0 {
            return Err(ConfigError("accounts must be positive".into()));
        }
        if !(0.0..=1.0).contains(&self.read_ratio) {
            return Err(ConfigError(format!(
                "read_ratio must be in [0,1], got {}",
                self.read_ratio
            )));
        }
        if self.clients == 0 || self.threads_per_client == 0 {
            return Err(ConfigError("clients and threads must be positive".into()));
        }
        if let AccessDistribution::Zipfian { theta } = self.distribution {
            if !theta.is_finite() || theta < 0.0 {
                return Err(ConfigError(format!("bad zipfian theta {theta}")));
            }
        }
        Ok(())
    }

    /// Serialises to the JSON profile format.
    pub fn to_json(&self) -> Value {
        let dist = match self.distribution {
            AccessDistribution::Uniform => Value::object([("type", Value::from("uniform"))]),
            AccessDistribution::Zipfian { theta } => Value::object([
                ("type", Value::from("zipfian")),
                ("theta", Value::from(theta)),
            ]),
        };
        Value::object([
            (
                "workload",
                Value::from(match self.kind {
                    WorkloadKind::SmallBank => "smallbank",
                    WorkloadKind::Ycsb => "ycsb",
                }),
            ),
            ("chain_name", Value::from(self.chain_name.clone())),
            ("contract_name", Value::from(self.contract_name.clone())),
            ("accounts", Value::from(self.accounts)),
            ("read_ratio", Value::from(self.read_ratio)),
            ("distribution", dist),
            ("total_txs", Value::from(self.total_txs)),
            ("clients", Value::from(self.clients as u64)),
            (
                "threads_per_client",
                Value::from(self.threads_per_client as u64),
            ),
            ("initial_checking", Value::from(self.initial_checking)),
            ("initial_savings", Value::from(self.initial_savings)),
            ("seed", Value::from(self.seed)),
        ])
    }

    /// Parses the JSON profile format (missing fields take defaults).
    pub fn from_json(v: &Value) -> Result<Self, ConfigError> {
        let defaults = Self::default();
        let kind = match v.get("workload").and_then(Value::as_str) {
            Some("smallbank") | None => WorkloadKind::SmallBank,
            Some("ycsb") => WorkloadKind::Ycsb,
            Some(other) => return Err(ConfigError(format!("unknown workload '{other}'"))),
        };
        let distribution = match v.get("distribution") {
            None => defaults.distribution,
            Some(d) => match d.get("type").and_then(Value::as_str) {
                Some("uniform") | None => AccessDistribution::Uniform,
                Some("zipfian") => AccessDistribution::Zipfian {
                    theta: d.get("theta").and_then(Value::as_f64).unwrap_or(0.99),
                },
                Some(other) => return Err(ConfigError(format!("unknown distribution '{other}'"))),
            },
        };
        let get_u64 =
            |key: &str, default: u64| v.get(key).and_then(Value::as_u64).unwrap_or(default);
        let config = WorkloadConfig {
            kind,
            chain_name: v
                .get("chain_name")
                .and_then(Value::as_str)
                .unwrap_or(&defaults.chain_name)
                .to_owned(),
            contract_name: v
                .get("contract_name")
                .and_then(Value::as_str)
                .unwrap_or(&defaults.contract_name)
                .to_owned(),
            accounts: get_u64("accounts", defaults.accounts as u64) as usize,
            read_ratio: v
                .get("read_ratio")
                .and_then(Value::as_f64)
                .unwrap_or(defaults.read_ratio),
            distribution,
            total_txs: get_u64("total_txs", defaults.total_txs as u64) as usize,
            clients: get_u64("clients", defaults.clients as u64) as u32,
            threads_per_client: get_u64("threads_per_client", defaults.threads_per_client as u64)
                as u32,
            initial_checking: get_u64("initial_checking", defaults.initial_checking),
            initial_savings: get_u64("initial_savings", defaults.initial_savings),
            seed: get_u64("seed", defaults.seed),
        };
        config.validate()?;
        Ok(config)
    }

    /// Parses from JSON text.
    pub fn parse(text: &str) -> Result<Self, ConfigError> {
        let v = Value::parse(text).map_err(|e| ConfigError(e.to_string()))?;
        Self::from_json(&v)
    }

    /// Persists the profile to a JSON file (the paper's client writes the
    /// generated workload profile to disk and ships it to the server).
    pub fn save_to(&self, path: impl AsRef<std::path::Path>) -> Result<(), ConfigError> {
        std::fs::write(path.as_ref(), self.to_json().to_json())
            .map_err(|e| ConfigError(format!("cannot write profile: {e}")))
    }

    /// Loads a profile from a JSON file.
    pub fn load_from(path: impl AsRef<std::path::Path>) -> Result<Self, ConfigError> {
        let text = std::fs::read_to_string(path.as_ref())
            .map_err(|e| ConfigError(format!("cannot read profile: {e}")))?;
        Self::parse(&text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_validates() {
        WorkloadConfig::default().validate().unwrap();
    }

    #[test]
    fn roundtrip_through_json() {
        let config = WorkloadConfig {
            kind: WorkloadKind::Ycsb,
            read_ratio: 0.5,
            distribution: AccessDistribution::Zipfian { theta: 0.99 },
            ..WorkloadConfig::default()
        };
        let text = config.to_json().to_json();
        let parsed = WorkloadConfig::parse(&text).unwrap();
        assert_eq!(parsed, config);
    }

    #[test]
    fn missing_fields_take_defaults() {
        let parsed = WorkloadConfig::parse(r#"{"workload": "smallbank"}"#).unwrap();
        assert_eq!(parsed, WorkloadConfig::default());
    }

    #[test]
    fn rejects_unknown_workload() {
        assert!(WorkloadConfig::parse(r#"{"workload": "tpcc"}"#).is_err());
    }

    #[test]
    fn rejects_bad_read_ratio() {
        let config = WorkloadConfig {
            read_ratio: 1.5,
            ..WorkloadConfig::default()
        };
        assert!(config.validate().is_err());
    }

    #[test]
    fn rejects_zero_accounts() {
        let config = WorkloadConfig {
            accounts: 0,
            ..WorkloadConfig::default()
        };
        assert!(config.validate().is_err());
    }

    #[test]
    fn rejects_zero_clients() {
        let config = WorkloadConfig {
            clients: 0,
            ..WorkloadConfig::default()
        };
        assert!(config.validate().is_err());
    }

    #[test]
    fn rejects_invalid_json() {
        assert!(WorkloadConfig::parse("{nope").is_err());
    }

    #[test]
    fn file_roundtrip() {
        let config = WorkloadConfig {
            kind: WorkloadKind::Ycsb,
            read_ratio: 0.95,
            seed: 777,
            ..WorkloadConfig::default()
        };
        let dir = std::env::temp_dir().join("hammer-config-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("profile.json");
        config.save_to(&path).unwrap();
        let loaded = WorkloadConfig::load_from(&path).unwrap();
        assert_eq!(loaded, config);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_from_missing_file_errors() {
        assert!(WorkloadConfig::load_from("/definitely/not/here.json").is_err());
    }

    #[test]
    fn zipfian_default_theta() {
        let parsed = WorkloadConfig::parse(r#"{"distribution": {"type": "zipfian"}}"#).unwrap();
        assert_eq!(
            parsed.distribution,
            AccessDistribution::Zipfian { theta: 0.99 }
        );
    }
}
