//! A YCSB-style key/value workload generator.
//!
//! Covers the paper's "self-defined workloads" claim with the classic
//! cloud-serving mixes: the read ratio and key distribution come from the
//! same [`WorkloadConfig`] as SmallBank (YCSB-A = 50% reads uniform,
//! YCSB-B = 95% reads zipfian, YCSB-C = 100% reads).

use hammer_chain::smallbank::Op;
use hammer_chain::types::Transaction;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::config::{AccessDistribution, WorkloadConfig, WorkloadKind};
use crate::zipf::Zipfian;

/// Generates `KvPut`/`KvGet` transactions from a [`WorkloadConfig`].
#[derive(Debug)]
pub struct YcsbGenerator {
    config: WorkloadConfig,
    zipf: Option<Zipfian>,
    rng: StdRng,
    next_nonce: u64,
}

impl YcsbGenerator {
    /// Builds a generator.
    ///
    /// # Panics
    ///
    /// Panics when the config does not validate or is not a YCSB config.
    pub fn new(config: WorkloadConfig) -> Self {
        config.validate().expect("invalid workload config");
        assert_eq!(
            config.kind,
            WorkloadKind::Ycsb,
            "YcsbGenerator needs a YCSB config"
        );
        let zipf = match config.distribution {
            AccessDistribution::Uniform => None,
            AccessDistribution::Zipfian { theta } => Some(Zipfian::new(config.accounts, theta)),
        };
        let rng = StdRng::seed_from_u64(config.seed);
        YcsbGenerator {
            config,
            zipf,
            rng,
            next_nonce: 0,
        }
    }

    fn pick_key(&mut self) -> u64 {
        let idx = match &self.zipf {
            Some(z) => z.sample(&mut self.rng),
            None => self.rng.gen_range(0..self.config.accounts),
        };
        // Disperse indices so keys don't collide with SmallBank addresses.
        0x9e37_79b9_7f4a_7c15u64.wrapping_mul(idx as u64 + 1)
    }

    /// Generates the next operation following the configured read mix.
    pub fn next_op(&mut self) -> Op {
        if self.rng.gen::<f64>() < self.config.read_ratio {
            Op::KvGet {
                key: self.pick_key(),
            }
        } else {
            Op::KvPut {
                key: self.pick_key(),
                value: self.rng.gen(),
            }
        }
    }

    /// Generates the next unsigned transaction.
    pub fn next_tx(&mut self, client_id: u32, server_id: u32) -> Transaction {
        let op = self.next_op();
        let nonce = self.next_nonce;
        self.next_nonce += 1;
        Transaction {
            client_id,
            server_id,
            nonce,
            op,
            chain_name: self.config.chain_name.clone(),
            contract_name: self.config.contract_name.clone(),
        }
    }

    /// Generates the configured batch.
    pub fn generate_all(&mut self) -> Vec<Transaction> {
        let clients = self.config.clients;
        (0..self.config.total_txs)
            .map(|i| self.next_tx((i as u32) % clients, 0))
            .collect()
    }

    /// The classic YCSB-A profile (50/50 read/update, uniform keys).
    pub fn workload_a(keys: usize, seed: u64) -> WorkloadConfig {
        WorkloadConfig {
            kind: WorkloadKind::Ycsb,
            contract_name: "kv".to_owned(),
            accounts: keys,
            read_ratio: 0.5,
            distribution: AccessDistribution::Uniform,
            seed,
            ..WorkloadConfig::default()
        }
    }

    /// The classic YCSB-B profile (95% reads, zipfian keys).
    pub fn workload_b(keys: usize, seed: u64) -> WorkloadConfig {
        WorkloadConfig {
            read_ratio: 0.95,
            distribution: AccessDistribution::Zipfian { theta: 0.99 },
            ..Self::workload_a(keys, seed)
        }
    }

    /// The classic YCSB-C profile (read only).
    pub fn workload_c(keys: usize, seed: u64) -> WorkloadConfig {
        WorkloadConfig {
            read_ratio: 1.0,
            ..Self::workload_a(keys, seed)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_a_mix() {
        let mut generator = YcsbGenerator::new(YcsbGenerator::workload_a(100, 1));
        let reads = (0..10_000)
            .filter(|_| matches!(generator.next_op(), Op::KvGet { .. }))
            .count();
        let frac = reads as f64 / 10_000.0;
        assert!((frac - 0.5).abs() < 0.03, "frac = {frac}");
    }

    #[test]
    fn workload_c_is_read_only() {
        let mut generator = YcsbGenerator::new(YcsbGenerator::workload_c(100, 1));
        assert!((0..5_000).all(|_| matches!(generator.next_op(), Op::KvGet { .. })));
    }

    #[test]
    fn workload_b_mostly_reads_and_skewed() {
        let mut generator = YcsbGenerator::new(YcsbGenerator::workload_b(100, 1));
        let mut reads = 0;
        let mut key_counts = std::collections::HashMap::new();
        for _ in 0..20_000 {
            match generator.next_op() {
                Op::KvGet { key } => {
                    reads += 1;
                    *key_counts.entry(key).or_insert(0usize) += 1;
                }
                Op::KvPut { key, .. } => {
                    *key_counts.entry(key).or_insert(0usize) += 1;
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        let frac = reads as f64 / 20_000.0;
        assert!((frac - 0.95).abs() < 0.02, "frac = {frac}");
        let max = key_counts.values().max().copied().unwrap_or(0);
        assert!(max > 20_000 / 100 * 3, "no skew visible (max={max})");
    }

    #[test]
    fn deterministic_generation() {
        let a = YcsbGenerator::new(YcsbGenerator::workload_a(100, 9)).generate_all();
        let b = YcsbGenerator::new(YcsbGenerator::workload_a(100, 9)).generate_all();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "YCSB config")]
    fn rejects_smallbank_config() {
        let _ = YcsbGenerator::new(WorkloadConfig::default());
    }
}
