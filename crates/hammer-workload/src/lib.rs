//! The workload layer of the Hammer evaluation framework.
//!
//! The paper's client (§III-A1) parses a workload profile, pre-populates
//! accounts, and generates the transaction payloads the driver will sign
//! and submit under a temporal *control sequence*. This crate implements
//! all of that:
//!
//! * [`config`] — the JSON workload profile (read/write mix, distribution,
//!   account count, client/thread topology).
//! * [`smallbank`] — the SmallBank generator, the paper's evaluation
//!   workload (§V *Workload*), with a uniform mix over the four primary
//!   operations.
//! * [`ycsb`] — a YCSB-style key/value workload (the "self-defined
//!   workloads" extension point).
//! * [`zipf`] — a from-scratch Zipfian sampler for skewed account access.
//! * [`control`] — control sequences: per-slice concurrency budgets that
//!   make synthetic load follow real temporal shapes.
//! * [`traces`] — seeded synthetic equivalents of the paper's three
//!   real-application datasets (DeFi, NFT, Sandbox games; Fig. 1), used to
//!   train and evaluate the prediction model (Table III, Fig. 11).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod config;
pub mod control;
pub mod smallbank;
pub mod traces;
pub mod ycsb;
pub mod zipf;

pub use config::{AccessDistribution, WorkloadConfig, WorkloadKind};
pub use control::ControlSequence;
pub use smallbank::SmallBankGenerator;
pub use traces::{TraceKind, TraceSpec};
pub use ycsb::YcsbGenerator;
pub use zipf::Zipfian;
