//! A Zipfian integer sampler (from scratch, rejection-inversion free —
//! plain inverse-CDF over precomputed cumulative weights, which is exact
//! and fast enough for the account-pool sizes benchmarks use).

use rand::Rng;

/// Samples integers in `[0, n)` with probability proportional to
/// `1 / (i + 1)^theta`.
///
/// `theta = 0` degenerates to uniform; classic YCSB uses `theta = 0.99`.
#[derive(Clone, Debug)]
pub struct Zipfian {
    /// Cumulative distribution, cdf[i] = P(X <= i).
    cdf: Vec<f64>,
}

impl Zipfian {
    /// Builds a sampler over `n` items with skew `theta`.
    ///
    /// # Panics
    ///
    /// Panics when `n == 0` or `theta` is negative/non-finite.
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 0, "Zipfian needs at least one item");
        assert!(
            theta.is_finite() && theta >= 0.0,
            "theta must be finite and non-negative"
        );
        let mut weights = Vec::with_capacity(n);
        let mut total = 0.0f64;
        for i in 0..n {
            let w = 1.0 / ((i + 1) as f64).powf(theta);
            total += w;
            weights.push(total);
        }
        for w in &mut weights {
            *w /= total;
        }
        Zipfian { cdf: weights }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Always false (construction requires `n > 0`).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Draws one item index.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        // Binary search for the first cdf entry >= u.
        match self
            .cdf
            .binary_search_by(|probe| probe.partial_cmp(&u).expect("finite"))
        {
            Ok(idx) => idx,
            Err(idx) => idx.min(self.cdf.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_when_theta_zero() {
        let z = Zipfian::new(10, 0.0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for c in counts {
            let frac = c as f64 / 100_000.0;
            assert!((frac - 0.1).abs() < 0.01, "frac = {frac}");
        }
    }

    #[test]
    fn skew_prefers_low_indices() {
        let z = Zipfian::new(100, 0.99);
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = vec![0usize; 100];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[10] > counts[50]);
        // Item 0 should receive roughly 1/H_100(0.99) ~= 19% of draws.
        let frac0 = counts[0] as f64 / 100_000.0;
        assert!(frac0 > 0.12 && frac0 < 0.30, "frac0 = {frac0}");
    }

    #[test]
    fn all_samples_in_range() {
        let z = Zipfian::new(7, 1.5);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 7);
        }
    }

    #[test]
    fn single_item_always_zero() {
        let z = Zipfian::new(1, 0.99);
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut rng), 0);
        }
    }

    #[test]
    #[should_panic(expected = "at least one item")]
    fn zero_items_panics() {
        let _ = Zipfian::new(0, 1.0);
    }

    #[test]
    #[should_panic(expected = "theta must be finite")]
    fn negative_theta_panics() {
        let _ = Zipfian::new(5, -1.0);
    }
}
