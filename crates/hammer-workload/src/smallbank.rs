//! The SmallBank transaction generator.
//!
//! §V *Workload*: "SmallBank is employed to simulate a basic banking
//! system ... Its primary operations typically include deposit, withdraw,
//! transfer, and amalgamate. The access patterns of these four operations
//! follow a uniform distribution." When
//! [`crate::config::WorkloadConfig::read_ratio`] is non-zero, balance reads
//! are mixed in.

use hammer_chain::smallbank::Op;
use hammer_chain::types::{Address, Transaction};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::config::{AccessDistribution, WorkloadConfig, WorkloadKind};
use crate::zipf::Zipfian;

/// Generates SmallBank transactions from a [`WorkloadConfig`].
#[derive(Debug)]
pub struct SmallBankGenerator {
    config: WorkloadConfig,
    accounts: Vec<Address>,
    zipf: Option<Zipfian>,
    rng: StdRng,
    next_nonce: u64,
}

impl SmallBankGenerator {
    /// Builds a generator; the account pool is derived from the seed so
    /// every component (generator, chain seeding, verification) agrees on
    /// the same addresses.
    ///
    /// # Panics
    ///
    /// Panics when the config does not validate or is not a SmallBank
    /// config.
    pub fn new(config: WorkloadConfig) -> Self {
        config.validate().expect("invalid workload config");
        assert_eq!(
            config.kind,
            WorkloadKind::SmallBank,
            "SmallBankGenerator needs a SmallBank config"
        );
        let accounts = Self::account_pool(config.accounts, config.seed);
        let zipf = match config.distribution {
            AccessDistribution::Uniform => None,
            AccessDistribution::Zipfian { theta } => Some(Zipfian::new(config.accounts, theta)),
        };
        let rng = StdRng::seed_from_u64(config.seed);
        SmallBankGenerator {
            config,
            accounts,
            zipf,
            rng,
            next_nonce: 0,
        }
    }

    /// The deterministic account pool for `(count, seed)`.
    pub fn account_pool(count: usize, seed: u64) -> Vec<Address> {
        (0..count)
            .map(|i| Address::from_name(&format!("smallbank-{seed}-{i}")))
            .collect()
    }

    /// The generator's account pool.
    pub fn accounts(&self) -> &[Address] {
        &self.accounts
    }

    fn pick_account(&mut self) -> Address {
        let idx = match &self.zipf {
            Some(z) => z.sample(&mut self.rng),
            None => self.rng.gen_range(0..self.accounts.len()),
        };
        self.accounts[idx]
    }

    fn pick_two_accounts(&mut self) -> (Address, Address) {
        let a = self.pick_account();
        if self.accounts.len() == 1 {
            return (a, a);
        }
        loop {
            let b = self.pick_account();
            if b != a {
                return (a, b);
            }
        }
    }

    /// Generates the next unsigned transaction. `client_id`/`server_id`
    /// are stamped by the driver when it assigns work.
    pub fn next_tx(&mut self, client_id: u32, server_id: u32) -> Transaction {
        let op = self.next_op();
        let nonce = self.next_nonce;
        self.next_nonce += 1;
        Transaction {
            client_id,
            server_id,
            nonce,
            op,
            chain_name: self.config.chain_name.clone(),
            contract_name: self.config.contract_name.clone(),
        }
    }

    /// Generates the next operation following the configured mix.
    pub fn next_op(&mut self) -> Op {
        if self.config.read_ratio > 0.0 && self.rng.gen::<f64>() < self.config.read_ratio {
            return Op::Balance {
                account: self.pick_account(),
            };
        }
        let amount = self.rng.gen_range(1..=100u64);
        // Uniform over the four primary operations (paper §V Workload).
        match self.rng.gen_range(0..4u8) {
            0 => Op::DepositChecking {
                account: self.pick_account(),
                amount,
            },
            1 => Op::WriteCheck {
                account: self.pick_account(),
                amount,
            },
            2 => {
                let (from, to) = self.pick_two_accounts();
                Op::SendPayment { from, to, amount }
            }
            _ => {
                let (from, to) = self.pick_two_accounts();
                Op::Amalgamate { from, to }
            }
        }
    }

    /// Generates a full batch of `total_txs` transactions, round-robining
    /// the configured clients/servers.
    pub fn generate_all(&mut self) -> Vec<Transaction> {
        let clients = self.config.clients;
        let total = self.config.total_txs;
        (0..total)
            .map(|i| {
                let client = (i as u32) % clients;
                let server = client % self.config.threads_per_client.max(1);
                self.next_tx(client, server)
            })
            .collect()
    }

    /// The `CreateAccount` fixture operations that seed the pool.
    pub fn seed_ops(&self) -> Vec<Op> {
        self.accounts
            .iter()
            .map(|a| Op::CreateAccount {
                account: *a,
                checking: self.config.initial_checking,
                savings: self.config.initial_savings,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(total: usize) -> WorkloadConfig {
        WorkloadConfig {
            accounts: 50,
            total_txs: total,
            ..WorkloadConfig::default()
        }
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a: Vec<Transaction> = SmallBankGenerator::new(config(100)).generate_all();
        let b: Vec<Transaction> = SmallBankGenerator::new(config(100)).generate_all();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let mut cfg = config(100);
        cfg.seed = 1;
        let a = SmallBankGenerator::new(cfg.clone()).generate_all();
        cfg.seed = 2;
        let b = SmallBankGenerator::new(cfg).generate_all();
        assert_ne!(a, b);
    }

    #[test]
    fn nonces_are_unique() {
        let txs = SmallBankGenerator::new(config(500)).generate_all();
        let mut nonces: Vec<u64> = txs.iter().map(|t| t.nonce).collect();
        nonces.sort_unstable();
        nonces.dedup();
        assert_eq!(nonces.len(), 500);
    }

    #[test]
    fn op_mix_roughly_uniform() {
        let mut generator = SmallBankGenerator::new(config(0));
        let mut counts = [0usize; 4];
        for _ in 0..40_000 {
            match generator.next_op() {
                Op::DepositChecking { .. } => counts[0] += 1,
                Op::WriteCheck { .. } => counts[1] += 1,
                Op::SendPayment { .. } => counts[2] += 1,
                Op::Amalgamate { .. } => counts[3] += 1,
                other => panic!("unexpected op {other:?}"),
            }
        }
        for c in counts {
            let frac = c as f64 / 40_000.0;
            assert!((frac - 0.25).abs() < 0.02, "frac = {frac}");
        }
    }

    #[test]
    fn read_ratio_mixes_in_balances() {
        let mut generator = SmallBankGenerator::new(WorkloadConfig {
            read_ratio: 0.5,
            ..config(0)
        });
        let reads = (0..10_000)
            .filter(|_| matches!(generator.next_op(), Op::Balance { .. }))
            .count();
        let frac = reads as f64 / 10_000.0;
        assert!((frac - 0.5).abs() < 0.03, "frac = {frac}");
    }

    #[test]
    fn transfers_use_distinct_accounts() {
        let mut generator = SmallBankGenerator::new(config(0));
        for _ in 0..5_000 {
            if let Op::SendPayment { from, to, .. } = generator.next_op() {
                assert_ne!(from, to);
            }
        }
    }

    #[test]
    fn all_ops_touch_pool_accounts() {
        let mut generator = SmallBankGenerator::new(config(0));
        let pool: std::collections::HashSet<Address> =
            generator.accounts().iter().copied().collect();
        for _ in 0..2_000 {
            for a in generator.next_op().touched_accounts() {
                assert!(pool.contains(&a));
            }
        }
    }

    #[test]
    fn zipfian_skews_account_use() {
        let mut generator = SmallBankGenerator::new(WorkloadConfig {
            distribution: AccessDistribution::Zipfian { theta: 0.99 },
            ..config(0)
        });
        let pool = generator.accounts().to_vec();
        let mut counts = std::collections::HashMap::new();
        for _ in 0..20_000 {
            for a in generator.next_op().touched_accounts() {
                *counts.entry(a).or_insert(0usize) += 1;
            }
        }
        let hot = counts.get(&pool[0]).copied().unwrap_or(0);
        let cold = counts.get(&pool[pool.len() - 1]).copied().unwrap_or(0);
        assert!(hot > cold * 3, "hot={hot} cold={cold}");
    }

    #[test]
    fn seed_ops_cover_pool() {
        let generator = SmallBankGenerator::new(config(10));
        let ops = generator.seed_ops();
        assert_eq!(ops.len(), 50);
        assert!(ops.iter().all(|o| matches!(o, Op::CreateAccount { .. })));
    }

    #[test]
    fn clients_round_robin() {
        let txs = SmallBankGenerator::new(WorkloadConfig {
            clients: 4,
            ..config(8)
        })
        .generate_all();
        let ids: Vec<u32> = txs.iter().map(|t| t.client_id).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "SmallBank config")]
    fn rejects_ycsb_config() {
        let _ = SmallBankGenerator::new(WorkloadConfig {
            kind: WorkloadKind::Ycsb,
            ..WorkloadConfig::default()
        });
    }
}
