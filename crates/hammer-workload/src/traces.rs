//! Synthetic equivalents of the paper's three real application traces.
//!
//! The paper trains its prediction model on 300 hours of real transaction
//! data: a DeFi dataset of 1 791 transactions, a sandbox-game dataset of
//! 22 674 records, and an NFT dataset of 233 014 transactions (§V-E),
//! bucketed into hourly counts. Those proprietary scrapes are not
//! available, so this module generates *seeded synthetic traces with the
//! same statistical character* (see DESIGN.md, substitution table):
//!
//! * **DeFi** — low-rate and comparatively stable: weak daily cycle, small
//!   Poisson noise (the paper: "DeFi and NFTs are more stable", and its
//!   model struggles here "possibly due to the limited amount of data").
//! * **NFT** — high-rate with a pronounced daily cycle plus heavy bursts
//!   (drop/mint events multiply the rate for a few hours).
//! * **Sandbox** — regime-switching: quiet play punctuated by intense
//!   event windows, i.e. "rapid variations and bursts across different
//!   durations" (Fig. 1).
//!
//! All totals match the paper's dataset sizes to within rounding.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Which application's temporal character to synthesise.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TraceKind {
    /// Decentralized finance: low-rate, stable.
    DeFi,
    /// Non-fungible tokens: high-rate, periodic, bursty.
    Nft,
    /// Sandbox games: regime-switching bursts.
    Sandbox,
}

impl TraceKind {
    /// The paper's dataset size for this application.
    pub fn paper_total(&self) -> usize {
        match self {
            TraceKind::DeFi => 1_791,
            TraceKind::Nft => 233_014,
            TraceKind::Sandbox => 22_674,
        }
    }

    /// Display name matching the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            TraceKind::DeFi => "DeFi",
            TraceKind::Nft => "NFTs",
            TraceKind::Sandbox => "Sandbox",
        }
    }

    /// All three kinds, in the paper's Table III order.
    pub fn all() -> [TraceKind; 3] {
        [TraceKind::DeFi, TraceKind::Sandbox, TraceKind::Nft]
    }
}

/// A synthetic-trace specification.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceSpec {
    /// Application character.
    pub kind: TraceKind,
    /// Number of hourly buckets (the paper uses 300).
    pub hours: usize,
    /// RNG seed.
    pub seed: u64,
}

impl TraceSpec {
    /// The paper's setup: 300 hours.
    pub fn paper(kind: TraceKind, seed: u64) -> Self {
        TraceSpec {
            kind,
            hours: 300,
            seed,
        }
    }

    /// Generates the hourly transaction-count series.
    pub fn generate(&self) -> Vec<f64> {
        assert!(self.hours > 0, "need at least one hour");
        let mut rng = StdRng::seed_from_u64(self.seed ^ tag(self.kind));
        let raw: Vec<f64> = match self.kind {
            TraceKind::DeFi => defi_series(self.hours, &mut rng),
            TraceKind::Nft => nft_series(self.hours, &mut rng),
            TraceKind::Sandbox => sandbox_series(self.hours, &mut rng),
        };
        rescale(
            raw,
            self.kind.paper_total() as f64 * self.hours as f64 / 300.0,
        )
    }
}

fn tag(kind: TraceKind) -> u64 {
    match kind {
        TraceKind::DeFi => 0x1111,
        TraceKind::Nft => 0x2222,
        TraceKind::Sandbox => 0x3333,
    }
}

/// Scales a non-negative series so it sums to `target` (rounded), using
/// cumulative rounding so per-bucket rounding errors do not accumulate.
fn rescale(series: Vec<f64>, target: f64) -> Vec<f64> {
    let sum: f64 = series.iter().sum();
    if sum <= 0.0 {
        return series;
    }
    let k = target / sum;
    let mut out = Vec::with_capacity(series.len());
    let mut cum_exact = 0.0f64;
    let mut cum_rounded = 0.0f64;
    for v in &series {
        cum_exact += v.max(0.0) * k;
        let rounded = cum_exact.round();
        out.push((rounded - cum_rounded).max(0.0));
        cum_rounded = rounded;
    }
    out
}

/// Poisson sample (Knuth for small lambda, normal approximation above 30).
fn poisson<R: Rng + ?Sized>(rng: &mut R, lambda: f64) -> f64 {
    if lambda <= 0.0 {
        return 0.0;
    }
    if lambda > 30.0 {
        // Normal approximation.
        let z: f64 = standard_normal(rng);
        return (lambda + lambda.sqrt() * z).max(0.0).round();
    }
    let l = (-lambda).exp();
    let mut k = 0.0;
    let mut p = 1.0;
    loop {
        p *= rng.gen::<f64>();
        if p <= l {
            return k;
        }
        k += 1.0;
    }
}

/// Box-Muller standard normal.
fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

fn defi_series(hours: usize, rng: &mut StdRng) -> Vec<f64> {
    (0..hours)
        .map(|h| {
            let daily = 1.0 + 0.25 * (h as f64 * 2.0 * std::f64::consts::PI / 24.0).sin();
            poisson(rng, 6.0 * daily)
        })
        .collect()
}

fn nft_series(hours: usize, rng: &mut StdRng) -> Vec<f64> {
    let mut series = Vec::with_capacity(hours);
    // Mint/drop bursts kick an excitement level that decays geometrically
    // (~40%/hour): sharp rise, smooth exponential tail. The decay gives
    // the burst a *shape* a sequence model can learn from recent history.
    let mut burst_level: f64 = 0.0;
    for h in 0..hours {
        // Strong daily cycle with a weekly modulation.
        let daily = 1.0 + 0.45 * (h as f64 * 2.0 * std::f64::consts::PI / 24.0).sin();
        let weekly = 1.0 + 0.15 * (h as f64 * 2.0 * std::f64::consts::PI / 168.0).sin();
        if rng.gen::<f64>() < 0.03 {
            burst_level += rng.gen_range(2.0..7.0);
        }
        burst_level *= 0.6;
        series.push(poisson(rng, 600.0 * daily * weekly * (1.0 + burst_level)));
    }
    series
}

fn sandbox_series(hours: usize, rng: &mut StdRng) -> Vec<f64> {
    let mut series = Vec::with_capacity(hours);
    // Player activity follows a sticky two-state regime (quiet play vs
    // in-game events); the instantaneous level approaches the regime
    // target smoothly (AR(1) dynamics), so ramps up and down are visible
    // in the history — "rapid variations" that are nevertheless
    // structured, not white noise.
    let mut active = false;
    let mut level: f64 = 35.0;
    for h in 0..hours {
        let switch_p = if active { 0.15 } else { 0.05 };
        if rng.gen::<f64>() < switch_p {
            active = !active;
        }
        let target = if active { 240.0 } else { 35.0 };
        level += 0.5 * (target - level);
        // Occasional in-event surges decay into the level smoothly.
        if active && rng.gen::<f64>() < 0.2 {
            level += rng.gen_range(60.0..220.0);
        }
        let daily = 1.0 + 0.35 * (h as f64 * 2.0 * std::f64::consts::PI / 24.0).sin();
        series.push(poisson(rng, (level * daily).max(1.0)));
    }
    series
}

/// Simple series statistics used by tests and the Fig. 1 bench.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TraceStats {
    /// Sum of the series.
    pub total: f64,
    /// Mean per-hour count.
    pub mean: f64,
    /// Coefficient of variation (stddev / mean) — burstiness proxy.
    pub cv: f64,
    /// Peak over mean.
    pub peak_to_mean: f64,
}

/// Computes [`TraceStats`] for a series.
pub fn trace_stats(series: &[f64]) -> TraceStats {
    if series.is_empty() {
        return TraceStats {
            total: 0.0,
            mean: 0.0,
            cv: 0.0,
            peak_to_mean: 0.0,
        };
    }
    let total: f64 = series.iter().sum();
    let mean = total / series.len() as f64;
    let var = series.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / series.len() as f64;
    let peak = series.iter().copied().fold(0.0f64, f64::max);
    TraceStats {
        total,
        mean,
        cv: if mean > 0.0 { var.sqrt() / mean } else { 0.0 },
        peak_to_mean: if mean > 0.0 { peak / mean } else { 0.0 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_match_paper_datasets() {
        for kind in TraceKind::all() {
            let series = TraceSpec::paper(kind, 1).generate();
            assert_eq!(series.len(), 300);
            let total: f64 = series.iter().sum();
            let target = kind.paper_total() as f64;
            let err = (total - target).abs() / target;
            assert!(err < 0.02, "{kind:?}: total {total} vs target {target}");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = TraceSpec::paper(TraceKind::Nft, 7).generate();
        let b = TraceSpec::paper(TraceKind::Nft, 7).generate();
        assert_eq!(a, b);
        let c = TraceSpec::paper(TraceKind::Nft, 8).generate();
        assert_ne!(a, c);
    }

    #[test]
    fn kinds_have_distinct_seeds_even_with_same_user_seed() {
        let a = TraceSpec::paper(TraceKind::DeFi, 7).generate();
        let b = TraceSpec::paper(TraceKind::Sandbox, 7).generate();
        assert_ne!(a, b);
    }

    #[test]
    fn defi_is_most_stable() {
        // Matches the paper's observation that DeFi/NFT are more stable
        // than sandbox games.
        let defi = trace_stats(&TraceSpec::paper(TraceKind::DeFi, 3).generate());
        let sandbox = trace_stats(&TraceSpec::paper(TraceKind::Sandbox, 3).generate());
        assert!(
            defi.cv < sandbox.cv,
            "defi cv {} >= sandbox cv {}",
            defi.cv,
            sandbox.cv
        );
    }

    #[test]
    fn nft_has_bursts() {
        let stats = trace_stats(&TraceSpec::paper(TraceKind::Nft, 3).generate());
        assert!(
            stats.peak_to_mean > 2.0,
            "peak/mean = {}",
            stats.peak_to_mean
        );
    }

    #[test]
    fn series_is_non_negative() {
        for kind in TraceKind::all() {
            for seed in 0..5 {
                let series = TraceSpec::paper(kind, seed).generate();
                assert!(series.iter().all(|v| *v >= 0.0));
            }
        }
    }

    #[test]
    fn shorter_horizon_scales_total() {
        let series = TraceSpec {
            kind: TraceKind::Nft,
            hours: 150,
            seed: 1,
        }
        .generate();
        let total: f64 = series.iter().sum();
        let target = 233_014.0 / 2.0;
        assert!((total - target).abs() / target < 0.03, "total = {total}");
    }

    #[test]
    fn poisson_mean_is_lambda() {
        let mut rng = StdRng::seed_from_u64(1);
        for lambda in [0.5, 5.0, 50.0] {
            let n = 20_000;
            let sum: f64 = (0..n).map(|_| poisson(&mut rng, lambda)).sum();
            let mean = sum / n as f64;
            assert!(
                (mean - lambda).abs() / lambda < 0.05,
                "lambda={lambda} mean={mean}"
            );
        }
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.05, "var = {var}");
    }

    #[test]
    fn trace_stats_empty() {
        let stats = trace_stats(&[]);
        assert_eq!(stats.total, 0.0);
    }
}
