//! Temporal control sequences.
//!
//! A control sequence (paper §III-B1, step ② and §IV) is "a time sequence
//! to control the number of concurrent transactions within a time period".
//! The driver consumes one budget entry per slice: during slice `i` it
//! submits at most `budget(i)` transactions, making synthetic load follow
//! the temporal shape of a real application (or of the prediction model's
//! output).

use std::time::Duration;

/// A per-slice transaction budget.
#[derive(Clone, Debug, PartialEq)]
pub struct ControlSequence {
    budgets: Vec<u32>,
    slice: Duration,
}

impl ControlSequence {
    /// Builds a sequence from explicit per-slice budgets.
    ///
    /// # Panics
    ///
    /// Panics when `slice` is zero.
    pub fn from_budgets(budgets: Vec<u32>, slice: Duration) -> Self {
        assert!(!slice.is_zero(), "slice duration must be positive");
        ControlSequence { budgets, slice }
    }

    /// A constant-rate sequence: `rate` transactions per slice for
    /// `slices` slices (what existing frameworks do, per the paper's
    /// critique — "they simply generate an equal number of workloads").
    pub fn constant(rate: u32, slices: usize, slice: Duration) -> Self {
        Self::from_budgets(vec![rate; slices], slice)
    }

    /// A linear ramp from `start` to `end` over `slices` slices.
    pub fn ramp(start: u32, end: u32, slices: usize, slice: Duration) -> Self {
        assert!(slices >= 1, "ramp needs at least one slice");
        let budgets = (0..slices)
            .map(|i| {
                let t = if slices == 1 {
                    0.0
                } else {
                    i as f64 / (slices - 1) as f64
                };
                (start as f64 + (end as f64 - start as f64) * t).round() as u32
            })
            .collect();
        Self::from_budgets(budgets, slice)
    }

    /// Derives a sequence from a real/synthetic trace (e.g. hourly
    /// transaction counts): the shape is preserved, the total is rescaled
    /// to `target_total`, and each trace point becomes one slice of
    /// `slice` duration.
    pub fn from_trace(trace: &[f64], target_total: usize, slice: Duration) -> Self {
        let sum: f64 = trace.iter().map(|v| v.max(0.0)).sum();
        if sum <= 0.0 || trace.is_empty() {
            return Self::from_budgets(vec![], slice);
        }
        let scale = target_total as f64 / sum;
        let budgets = trace
            .iter()
            .map(|v| (v.max(0.0) * scale).round() as u32)
            .collect();
        Self::from_budgets(budgets, slice)
    }

    /// Number of slices.
    pub fn len(&self) -> usize {
        self.budgets.len()
    }

    /// Whether the sequence has no slices.
    pub fn is_empty(&self) -> bool {
        self.budgets.is_empty()
    }

    /// The slice duration.
    pub fn slice_duration(&self) -> Duration {
        self.slice
    }

    /// The budget of slice `i` (0 beyond the end).
    pub fn budget(&self, i: usize) -> u32 {
        self.budgets.get(i).copied().unwrap_or(0)
    }

    /// All budgets.
    pub fn budgets(&self) -> &[u32] {
        &self.budgets
    }

    /// Sum of all budgets.
    pub fn total(&self) -> u64 {
        self.budgets.iter().map(|b| *b as u64).sum()
    }

    /// Total simulated duration of the sequence.
    pub fn duration(&self) -> Duration {
        self.slice * self.budgets.len() as u32
    }

    /// Peak per-slice budget.
    pub fn peak(&self) -> u32 {
        self.budgets.iter().copied().max().unwrap_or(0)
    }

    /// Mean budget per slice.
    pub fn mean(&self) -> f64 {
        if self.budgets.is_empty() {
            return 0.0;
        }
        self.total() as f64 / self.budgets.len() as f64
    }

    /// Returns a copy rescaled so the total is (approximately) `total`.
    pub fn scaled_to_total(&self, total: usize) -> Self {
        let as_f64: Vec<f64> = self.budgets.iter().map(|b| *b as f64).collect();
        Self::from_trace(&as_f64, total, self.slice)
    }

    /// Burstiness: peak over mean (1.0 for a constant sequence).
    pub fn burstiness(&self) -> f64 {
        let mean = self.mean();
        if mean <= 0.0 {
            return 0.0;
        }
        self.peak() as f64 / mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn constant_sequence() {
        let c = ControlSequence::constant(10, 5, Duration::from_secs(1));
        assert_eq!(c.len(), 5);
        assert_eq!(c.total(), 50);
        assert_eq!(c.budget(0), 10);
        assert_eq!(c.budget(99), 0);
        assert!((c.burstiness() - 1.0).abs() < 1e-9);
        assert_eq!(c.duration(), Duration::from_secs(5));
    }

    #[test]
    fn ramp_endpoints() {
        let c = ControlSequence::ramp(0, 100, 11, Duration::from_secs(1));
        assert_eq!(c.budget(0), 0);
        assert_eq!(c.budget(10), 100);
        assert_eq!(c.budget(5), 50);
    }

    #[test]
    fn ramp_single_slice() {
        let c = ControlSequence::ramp(7, 100, 1, Duration::from_secs(1));
        assert_eq!(c.budget(0), 7);
    }

    #[test]
    fn from_trace_preserves_shape_and_total() {
        let trace = [1.0, 2.0, 4.0, 2.0, 1.0];
        let c = ControlSequence::from_trace(&trace, 1000, Duration::from_secs(1));
        assert_eq!(c.len(), 5);
        let total = c.total() as i64;
        assert!((total - 1000).abs() <= 3, "total = {total}");
        assert_eq!(c.peak(), c.budget(2));
        assert!(c.budget(2) > c.budget(0) * 3);
    }

    #[test]
    fn from_trace_ignores_negatives() {
        let trace = [-5.0, 10.0];
        let c = ControlSequence::from_trace(&trace, 100, Duration::from_secs(1));
        assert_eq!(c.budget(0), 0);
        assert_eq!(c.budget(1), 100);
    }

    #[test]
    fn from_trace_empty() {
        let c = ControlSequence::from_trace(&[], 100, Duration::from_secs(1));
        assert!(c.is_empty());
        assert_eq!(c.total(), 0);
    }

    #[test]
    fn scaled_to_total_changes_sum_not_shape() {
        let c = ControlSequence::from_budgets(vec![1, 2, 3], Duration::from_secs(1));
        let scaled = c.scaled_to_total(600);
        assert_eq!(scaled.budgets(), &[100, 200, 300]);
    }

    #[test]
    #[should_panic(expected = "slice duration must be positive")]
    fn zero_slice_panics() {
        let _ = ControlSequence::constant(1, 1, Duration::ZERO);
    }

    proptest! {
        #[test]
        fn prop_from_trace_total_close(
            trace in proptest::collection::vec(0.0f64..100.0, 1..50),
            target in 100usize..10_000,
        ) {
            prop_assume!(trace.iter().sum::<f64>() > 1.0);
            let c = ControlSequence::from_trace(&trace, target, Duration::from_secs(1));
            let err = (c.total() as i64 - target as i64).abs();
            // Rounding error bounded by half a tx per slice.
            prop_assert!(err <= trace.len() as i64);
        }
    }
}
