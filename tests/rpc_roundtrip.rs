//! The generic JSON-RPC interface end to end: a chain served over the
//! wire format must behave identically to the in-process handle.

use std::sync::Arc;
use std::time::Duration;

use hammer::chain::client::{Architecture, BlockchainClient};
use hammer::chain::rpc_adapter::{serve, RpcChainClient};
use hammer::chain::smallbank::Op;
use hammer::chain::types::{Address, Transaction};
use hammer::crypto::sig::SigParams;
use hammer::crypto::Keypair;
use hammer::net::{LinkConfig, SimClock, SimNetwork};
use hammer::neuchain::{NeuchainConfig, NeuchainSim};

fn wait_until(pred: impl Fn() -> bool, wall_ms: u64) -> bool {
    let deadline = std::time::Instant::now() + Duration::from_millis(wall_ms);
    while std::time::Instant::now() < deadline {
        if pred() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    false
}

#[test]
fn evaluation_through_json_rpc_matches_direct_access() {
    let clock = SimClock::with_speedup(500.0);
    let net = SimNetwork::new(clock.clone(), LinkConfig::cloud_100mbps());
    let chain = NeuchainSim::start(NeuchainConfig::default(), clock, net);
    chain.seed_account(Address::from_name("acct"), 1_000_000, 0);

    let server = serve(chain.clone() as Arc<dyn BlockchainClient>);
    let rpc = RpcChainClient::connect(&server, chain.clone() as Arc<dyn BlockchainClient>)
        .expect("connect");

    assert_eq!(rpc.chain_name(), "neuchain-sim");
    assert_eq!(rpc.architecture(), Architecture::NonSharded);

    // Submit through the wire format.
    let keypair = Keypair::from_seed(9);
    let params = SigParams::fast();
    let mut ids = Vec::new();
    for nonce in 0..50u64 {
        let tx = Transaction {
            client_id: 1,
            server_id: 0,
            nonce,
            op: Op::DepositChecking {
                account: Address::from_name("acct"),
                amount: 1,
            },
            chain_name: "neuchain-sim".to_owned(),
            contract_name: "smallbank".to_owned(),
        }
        .sign(&keypair, &params);
        ids.push(rpc.submit(tx).expect("submit over rpc"));
    }

    assert!(
        wait_until(|| chain.stats().committed >= 50, 8_000),
        "transactions did not commit"
    );

    // Both views agree on heights and block contents.
    let rpc_height = rpc.latest_height(0).unwrap();
    let direct_height = chain.latest_height(0).unwrap();
    assert_eq!(rpc_height, direct_height);
    for h in 1..=rpc_height {
        let via_rpc = rpc.block_at(0, h).unwrap().expect("block over rpc");
        let direct = chain.block_at(0, h).unwrap().expect("block direct");
        assert_eq!(via_rpc, direct, "block {h} differs across transports");
        assert!(via_rpc.verify_merkle_root());
    }

    // Every submitted id is on the ledger exactly once.
    let mut found = 0;
    for h in 1..=rpc_height {
        let block = rpc.block_at(0, h).unwrap().unwrap();
        found += block.tx_ids.iter().filter(|id| ids.contains(id)).count();
    }
    assert_eq!(found, 50);

    assert_eq!(
        chain.account(Address::from_name("acct")).unwrap().checking,
        1_000_050
    );
    rpc.shutdown();
}

#[test]
fn rpc_rejects_malformed_submissions() {
    let clock = SimClock::with_speedup(500.0);
    let net = SimNetwork::new(clock.clone(), LinkConfig::cloud_100mbps());
    let chain = NeuchainSim::start(NeuchainConfig::default(), clock, net);
    let server = serve(chain.clone() as Arc<dyn BlockchainClient>);
    let raw = server.client();

    // Garbage params must produce InvalidParams, not a crash.
    let err = raw
        .call(
            "submit_transaction",
            hammer::rpc::json::Value::object([("nope", hammer::rpc::json::Value::from(1))]),
        )
        .unwrap_err();
    assert_eq!(err.code.code(), -32602);
    chain.shutdown();
}
