//! The signing optimisations must be pure speed-ups: serial, async, and
//! pipelined signing produce the same signatures, and evaluations using
//! any strategy commit the same transaction set.

use std::collections::HashSet;
use std::time::Duration;

use hammer::chain::types::Transaction;
use hammer::core::deploy::{ChainSpec, Deployment};
use hammer::core::driver::{EvalConfig, Evaluation, SigningStrategy};
use hammer::core::machine::ClientMachine;
use hammer::core::signer::{sign_async, sign_pipelined, sign_serial};
use hammer::crypto::sig::SigParams;
use hammer::crypto::Keypair;
use hammer::workload::{ControlSequence, SmallBankGenerator, WorkloadConfig};

mod common;

fn batch(n: usize) -> Vec<Transaction> {
    SmallBankGenerator::new(WorkloadConfig {
        accounts: 200,
        total_txs: n,
        ..WorkloadConfig::default()
    })
    .generate_all()
}

#[test]
fn all_strategies_produce_identical_signatures() {
    let _guard = common::serial_guard();
    let keypair = Keypair::from_seed(3);
    let params = SigParams::fast();
    let n = 500;

    let serial = sign_serial(batch(n), &keypair, &params);
    let parallel = sign_async(batch(n), &keypair, &params, 4);
    assert_eq!(serial, parallel, "async differs from serial");

    let mut streamed: Vec<_> = sign_pipelined(batch(n), keypair, params, 4)
        .iter()
        .collect();
    streamed.sort_by_key(|tx| tx.tx.nonce);
    let mut ordered = serial;
    ordered.sort_by_key(|tx| tx.tx.nonce);
    assert_eq!(streamed, ordered, "pipelined differs from serial");
}

#[test]
fn evaluations_commit_the_same_set_under_every_strategy() {
    let _guard = common::serial_guard();
    let mut committed_sets: Vec<HashSet<u64>> = Vec::new();
    for signing in [
        SigningStrategy::Serial,
        SigningStrategy::Async,
        SigningStrategy::Pipelined,
    ] {
        let deployment = Deployment::up(ChainSpec::neuchain_default(), 400.0);
        let workload = WorkloadConfig {
            accounts: 300,
            chain_name: "neuchain-sim".to_owned(),
            ..WorkloadConfig::default()
        };
        let control = ControlSequence::constant(60, 5, Duration::from_secs(1));
        let config = EvalConfig::builder()
            .signing(signing)
            .machine(ClientMachine::unconstrained())
            .drain_timeout(Duration::from_secs(120))
            .build()
            .expect("valid config");
        let report = Evaluation::new(config)
            .run(&deployment, &workload, &control)
            .expect("run failed");
        assert_eq!(report.committed + report.failed + report.timed_out, 300);
        let set: HashSet<u64> = report
            .records
            .iter()
            .filter(|r| r.status == hammer::chain::types::TxStatus::Committed)
            .map(|r| r.tx_id.fingerprint())
            .collect();
        committed_sets.push(set);
    }
    assert_eq!(
        committed_sets[0], committed_sets[1],
        "serial vs async commit sets differ"
    );
    assert_eq!(
        committed_sets[0], committed_sets[2],
        "serial vs pipelined commit sets differ"
    );
}
