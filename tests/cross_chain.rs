//! One driver, four architectures: the generic-interface claim as an
//! integration test. Every simulated chain must complete the same
//! SmallBank evaluation with internally consistent reports.

use std::time::Duration;

use hammer::core::deploy::{ChainSpec, Deployment};
use hammer::core::driver::{EvalConfig, EvalReport, Evaluation};
use hammer::core::machine::ClientMachine;
use hammer::ethereum::EthereumConfig;
use hammer::workload::{ControlSequence, WorkloadConfig};

mod common;

fn run_chain(spec: ChainSpec, rate: u32, seconds: usize, speedup: f64) -> EvalReport {
    let name = spec.name().to_owned();
    let deployment = Deployment::up(spec, speedup);
    let workload = WorkloadConfig {
        accounts: 1_000,
        clients: 2,
        threads_per_client: 2,
        chain_name: name,
        ..WorkloadConfig::default()
    };
    let control = ControlSequence::constant(rate, seconds, Duration::from_secs(1));
    let config = EvalConfig::builder()
        .machine(ClientMachine::unconstrained())
        .drain_timeout(Duration::from_secs(200))
        .build()
        .expect("valid config");
    Evaluation::new(config)
        .run(&deployment, &workload, &control)
        .expect("evaluation failed")
}

fn assert_consistent(report: &EvalReport, expected_total: u64) {
    assert_eq!(
        report.submitted + report.rejected,
        expected_total,
        "{}: submissions accounted for",
        report.chain
    );
    assert_eq!(
        (report.committed + report.failed + report.timed_out) as u64,
        expected_total,
        "{}: every record classified",
        report.chain
    );
    assert!(report.overall_tps > 0.0, "{}: no throughput", report.chain);
    assert!(report.latency.count > 0, "{}: no latencies", report.chain);
}

#[test]
fn fabric_completes_the_common_workload() {
    let _guard = common::serial_guard();
    // Under the zipf-0.99 workload the commit count is dominated by
    // intra-block MVCC conflicts on hot accounts; repeated release runs
    // land in a band, most recently [510, 529] of 600 under the
    // watchdog-instrumented driver. The bound keeps ~6% headroom below
    // the observed floor — a real sealing or validation regression
    // commits far less. Full derivation and measurement history: "fabric
    // commit band" in tests/common/mod.rs.
    let report = run_chain(ChainSpec::fabric_default(), 100, 6, 400.0);
    assert_consistent(&report, 600);
    // Printed so re-measuring the band (see tests/common/mod.rs, "fabric
    // commit band") is a grep over `--nocapture` runs, not a code edit.
    eprintln!("fabric committed = {}", report.committed);
    assert!(report.committed > 480, "committed = {}", report.committed);
}

#[test]
fn neuchain_completes_the_common_workload() {
    let _guard = common::serial_guard();
    let report = run_chain(ChainSpec::neuchain_default(), 100, 6, 400.0);
    assert_consistent(&report, 600);
    assert!(report.committed > 550, "committed = {}", report.committed);
    // Deterministic ordering commits within roughly an epoch.
    assert!(
        report.latency.mean_s < 1.0,
        "neuchain latency {:.3}s",
        report.latency.mean_s
    );
}

#[test]
fn meepo_completes_the_common_workload_across_shards() {
    let _guard = common::serial_guard();
    let report = run_chain(ChainSpec::meepo_default(), 100, 6, 400.0);
    assert_consistent(&report, 600);
    assert!(report.committed > 550, "committed = {}", report.committed);
}

#[test]
fn ethereum_commits_with_short_private_blocks() {
    let _guard = common::serial_guard();
    // A short-block private net so the test stays fast.
    let spec = ChainSpec::Ethereum(EthereumConfig {
        block_interval: Duration::from_secs(2),
        ..EthereumConfig::default()
    });
    let report = run_chain(spec, 15, 8, 400.0);
    assert_consistent(&report, 120);
    assert!(report.committed > 100, "committed = {}", report.committed);
}

#[test]
fn relative_latency_ordering_holds() {
    let _guard = common::serial_guard();
    // The paper's headline shape at miniature scale: Neuchain commits
    // faster than Meepo (epoch 0.1s vs 0.8s block time).
    let neuchain = run_chain(ChainSpec::neuchain_default(), 80, 5, 400.0);
    let meepo = run_chain(ChainSpec::meepo_default(), 80, 5, 400.0);
    assert!(
        neuchain.latency.mean_s < meepo.latency.mean_s,
        "neuchain {:.3}s !< meepo {:.3}s",
        neuchain.latency.mean_s,
        meepo.latency.mean_s
    );
}
