//! The §IV pipeline end to end: synthetic trace → dataset → model →
//! generated continuation → control sequence → evaluation.

use std::time::Duration;

use hammer::core::deploy::{ChainSpec, Deployment};
use hammer::core::driver::{EvalConfig, Evaluation};
use hammer::core::machine::ClientMachine;
use hammer::predict::generate::generate_denormalized;
use hammer::predict::models::LinearModel;
use hammer::predict::{evaluate, Dataset, SeriesModel, TrainConfig};
use hammer::workload::traces::{TraceKind, TraceSpec};
use hammer::workload::{ControlSequence, WorkloadConfig};

#[test]
fn trace_to_evaluation_pipeline() {
    // 1. Trace.
    let series = TraceSpec::paper(TraceKind::Sandbox, 5).generate();
    assert_eq!(series.len(), 300);

    // 2. Dataset + quick model (Linear keeps the test fast; Table III
    //    compares the full model zoo).
    let config = TrainConfig {
        window: 24,
        epochs: 25,
        ..TrainConfig::default()
    };
    let dataset = Dataset::new(&series, config.window, 0.8);
    let mut model = LinearModel::new(&config);
    let loss = model.fit(&dataset.train, &config);
    assert!(loss.is_finite());

    // 3. One-step accuracy beats the trivial "always predict the training
    //    mean" baseline (which scores MAE = mean absolute deviation).
    let samples = dataset.test_samples();
    let mut predictions = Vec::new();
    let mut targets = Vec::new();
    for (w, t) in &samples {
        predictions.push(model.predict_next(w));
        targets.push(*t);
    }
    let metrics = evaluate(&predictions, &targets);
    let trivial_mae = targets.iter().map(|t| t.abs()).sum::<f64>() / targets.len() as f64;
    assert!(
        metrics.mae < trivial_mae * 1.05,
        "model MAE {:.3} no better than trivial {:.3}",
        metrics.mae,
        trivial_mae
    );

    // 4. Generate a 30-hour continuation; it must be finite, non-negative,
    //    and in a plausible range of the training data.
    let seed: Vec<f64> = dataset.train[dataset.train.len() - config.window..].to_vec();
    let generated = generate_denormalized(&mut model, &seed, 30, &dataset.normalizer);
    assert_eq!(generated.len(), 30);
    let train_max = series.iter().copied().fold(0.0f64, f64::max);
    for v in &generated {
        assert!(v.is_finite() && *v >= 0.0);
        assert!(*v <= train_max * 3.0, "generated value {v} exploded");
    }

    // 5. Shape the generated series into a control sequence and run it.
    let control = ControlSequence::from_trace(&generated, 2_000, Duration::from_secs(1));
    assert_eq!(control.len(), 30);
    let total = control.total();
    assert!((total as i64 - 2_000).abs() <= 30, "total = {total}");

    let deployment = Deployment::up(ChainSpec::neuchain_default(), 400.0);
    let workload = WorkloadConfig {
        accounts: 500,
        chain_name: "neuchain-sim".to_owned(),
        ..WorkloadConfig::default()
    };
    let eval_config = EvalConfig::builder()
        .machine(ClientMachine::unconstrained())
        .drain_timeout(Duration::from_secs(120))
        .build()
        .expect("valid config");
    let report = Evaluation::new(eval_config)
        .run(&deployment, &workload, &control)
        .expect("run failed");
    assert_eq!(
        report.committed + report.failed + report.timed_out,
        total as usize
    );
    assert!(report.committed as u64 > total * 9 / 10);
}
