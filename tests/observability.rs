//! The observability layer end to end: an instrumented evaluation run
//! must produce lifecycle spans, chain/driver metrics, a journal with
//! block seals (and fault transitions under a plan), a Prometheus
//! exposition that parses back to the driver's own numbers, and an ASCII
//! dashboard — while an uninstrumented run must record nothing at all.

use std::time::Duration;

use hammer::core::deploy::{ChainSpec, Deployment};
use hammer::core::driver::{EvalConfig, EvalReport, Evaluation};
use hammer::core::machine::ClientMachine;
use hammer::core::retry::RetryPolicy;
use hammer::net::{FaultPlan, LinkConfig, SimClock, SimNetwork};
use hammer::obs::{parse_prometheus, render_dashboard, EventKind, Obs, Stage};
use hammer::workload::{ControlSequence, WorkloadConfig};

mod common;

/// Runs SmallBank on Neuchain with observability installed (unless
/// `obs` is `None`) and an optional fault plan.
fn run_neuchain(
    obs: Option<Obs>,
    plan: Option<FaultPlan>,
    retry: RetryPolicy,
    total: u32,
) -> (EvalReport, Obs) {
    let clock = SimClock::with_speedup(100.0);
    let net = SimNetwork::new(clock.clone(), LinkConfig::cloud_100mbps());
    if let Some(obs) = obs {
        net.install_obs(obs);
    }
    // Deploy first: install_faults validates the plan against the live
    // topology, so the node endpoints must already be registered.
    let deployment = Deployment::up_on(ChainSpec::neuchain_default(), clock, net.clone());
    if let Some(plan) = plan {
        net.install_faults(plan);
    }
    let workload = WorkloadConfig {
        accounts: 500,
        chain_name: "neuchain-sim".to_owned(),
        ..WorkloadConfig::default()
    };
    let slices = 4usize;
    let control = ControlSequence::constant(total / slices as u32, slices, Duration::from_secs(1));
    let config = EvalConfig::builder()
        .machine(ClientMachine::unconstrained())
        .retry(retry)
        .drain_timeout(Duration::from_secs(60))
        .build()
        .expect("valid config");
    let report = Evaluation::new(config)
        .run(&deployment, &workload, &control)
        .expect("evaluation failed");
    let obs = deployment.net().obs();
    (report, obs)
}

#[test]
fn instrumented_run_produces_spans_metrics_and_exposition() {
    let _guard = common::serial_guard();
    let (report, obs) = run_neuchain(Some(Obs::new()), None, RetryPolicy::disabled(), 200);
    assert!(obs.enabled());
    assert!(report.committed > 150, "committed = {}", report.committed);

    // Lifecycle spans: every generated transaction was timed through the
    // preparation stages, and every matched one through the chain stages.
    let spans = obs.spans();
    assert_eq!(spans.histogram(Stage::Generated).count(), 200);
    assert_eq!(spans.histogram(Stage::Signed).count(), 200);
    assert!(spans.histogram(Stage::Submitted).count() > 0);
    assert!(spans.histogram(Stage::InBlock).count() >= report.committed as u64);
    assert_eq!(
        spans.histogram(Stage::Matched).count(),
        spans.histogram(Stage::InBlock).count()
    );

    // The journal saw the chain sealing blocks.
    assert!(obs.journal().count_of(EventKind::BlockSeal) > 0);

    // Exposition round-trip: the rendered text parses back, and the
    // parsed samples agree with the driver's own accounting.
    let text = obs.render_prometheus();
    let samples = parse_prometheus(&text).expect("exposition parses");
    let submitted = samples
        .iter()
        .find(|s| s.name == "hammer_driver_submitted_total")
        .expect("driver counter exposed");
    assert_eq!(submitted.value as u64, report.submitted);
    let sealed = samples
        .iter()
        .find(|s| {
            s.name == "hammer_chain_txs_sealed_total" && s.label("chain") == Some("neuchain-sim")
        })
        .expect("chain seal counter exposed");
    assert!(sealed.value as usize >= report.committed);
    // The span histograms render as cumulative bucket families.
    assert!(
        samples
            .iter()
            .any(|s| s.name == "hammer_span_stage_ns_count" && s.label("stage") == Some("signed")),
        "span histogram missing from exposition:\n{text}"
    );

    // The dashboard renders every section against a live registry.
    let series: Vec<f64> = report.tps_series.iter().map(|&n| n as f64).collect();
    let dash = render_dashboard(&obs, &series);
    for section in [
        "== TPS ==",
        "== Latency quantiles (s) ==",
        "== Resources ==",
        "== Journal",
    ] {
        assert!(dash.contains(section), "missing {section} in:\n{dash}");
    }
}

#[test]
fn fault_plan_transitions_are_journaled() {
    let _guard = common::serial_guard();
    // Crash the ingress gate for [2 s, 4 s) of a 4-slice run: the driver's
    // monitor polls the plan and must journal the enter and exit edges.
    let plan = FaultPlan::new().crash(
        "neuchain-client-proxy",
        Duration::from_secs(2),
        Duration::from_secs(4),
    );
    let (report, obs) = run_neuchain(Some(Obs::new()), Some(plan), RetryPolicy::standard(), 200);
    assert!(obs.enabled());
    assert!(
        obs.journal().count_of(EventKind::FaultEnter) >= 1,
        "no fault-enter journaled; journal:\n{}",
        obs.journal().to_jsonl()
    );
    assert!(
        obs.journal().count_of(EventKind::FaultExit) >= 1,
        "no fault-exit journaled; journal:\n{}",
        obs.journal().to_jsonl()
    );
    // The retried counter mirrors the report.
    let samples = parse_prometheus(&obs.render_prometheus()).expect("exposition parses");
    let retried = samples
        .iter()
        .find(|s| s.name == "hammer_driver_retried_total")
        .expect("retried counter exposed");
    assert_eq!(retried.value as u64, report.retried);
}

#[test]
fn uninstrumented_run_records_nothing() {
    let _guard = common::serial_guard();
    let (_, obs) = run_neuchain(None, None, RetryPolicy::disabled(), 100);
    assert!(!obs.enabled());
    assert_eq!(obs.spans().histogram(Stage::Signed).count(), 0);
    assert!(obs.journal().is_empty());
    let samples = parse_prometheus(&obs.render_prometheus()).expect("exposition parses");
    assert!(
        samples.is_empty(),
        "disabled registry must expose nothing: {samples:?}"
    );
}
