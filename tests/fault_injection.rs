//! Fault injection end to end: scripted fault plans on the simulated
//! network, the resilient submission path in the driver, and the
//! accounting invariants that tie them together.
//!
//! The key identity: every transaction pulled from the workload stream is
//! counted in `submitted`, and ends in exactly one terminal bucket —
//! `committed + failed + timed_out + rejected + dropped + expired`.
//! Under a crash-restart plan on a chain that never rejects or aborts
//! (Neuchain), that collapses to `committed + dropped + expired ==
//! submitted`.

use std::time::Duration;

use hammer::core::deploy::{ChainSpec, Deployment};
use hammer::core::driver::{EvalConfig, EvalReport, Evaluation};
use hammer::core::machine::ClientMachine;
use hammer::core::retry::RetryPolicy;
use hammer::net::{FaultPlan, LinkConfig, SimClock, SimNetwork};
use hammer::workload::{ControlSequence, WorkloadConfig};

mod common;

/// Runs SmallBank on Neuchain with the given plan and retry policy:
/// `rate` transactions per slice for `slices` slices of `slice` each.
fn run_neuchain(
    plan: Option<FaultPlan>,
    retry: RetryPolicy,
    rate: u32,
    slices: usize,
    slice: Duration,
    speedup: f64,
) -> EvalReport {
    let clock = SimClock::with_speedup(speedup);
    let net = SimNetwork::new(clock.clone(), LinkConfig::cloud_100mbps());
    // Deploy first: install_faults validates the plan against the live
    // topology, so the node endpoints must already be registered.
    let deployment = Deployment::up_on(ChainSpec::neuchain_default(), clock, net.clone());
    if let Some(plan) = plan {
        net.install_faults(plan);
    }
    let workload = WorkloadConfig {
        accounts: 500,
        chain_name: "neuchain-sim".to_owned(),
        ..WorkloadConfig::default()
    };
    let control = ControlSequence::constant(rate, slices, slice);
    let config = EvalConfig::builder()
        .machine(ClientMachine::unconstrained())
        .retry(retry)
        .drain_timeout(Duration::from_secs(60))
        .build()
        .expect("valid config");
    Evaluation::new(config)
        .run(&deployment, &workload, &control)
        .expect("evaluation failed")
}

/// Both Neuchain gate nodes down for `[start, end)`: no ingress, no
/// epoch production.
fn crash_plan(start: Duration, end: Duration) -> FaultPlan {
    FaultPlan::new()
        .crash("neuchain-client-proxy", start, end)
        .crash("neuchain-epoch-server", start, end)
}

/// The hard invariants that must hold on *every* crash-restart run,
/// regardless of host scheduling: Neuchain neither aborts nor rejects,
/// the generous drain leaves nothing pending, and every submitted
/// transaction lands in exactly one terminal bucket.
fn assert_accounting_identity(report: &EvalReport) {
    assert_eq!(report.failed, 0, "unexpected aborts: {report:?}");
    assert_eq!(report.timed_out, 0, "drain too short: {report:?}");
    assert_eq!(report.rejected, 0, "crash outages must be transient");
    assert_eq!(
        report.committed + report.dropped + report.expired,
        report.submitted as usize,
        "accounting identity violated: {report:?}",
    );
}

/// The load-sensitive expectations: the fault window actually intersected
/// the submission schedule. A badly descheduled host can skew the whole
/// (sub-second wall time) run past the window, so the test retries once
/// before failing on these.
fn fault_activity(report: &EvalReport) -> Result<(), String> {
    if report.retried == 0 {
        return Err("no retries under a 3s crash".to_owned());
    }
    if report.dropped + report.expired == 0 {
        return Err("a 3s outage with a 1s retry deadline must exhaust some txs".to_owned());
    }
    if report.committed == 0 {
        return Err("recovery after restart committed nothing".to_owned());
    }
    // Per-window breakdown: both crash windows report degraded TPS
    // relative to the nominal (outside-window) rate.
    let nominal = report
        .fault_windows
        .iter()
        .find(|w| w.label == "nominal")
        .ok_or("nominal entry missing")?;
    let crash_windows: Vec<_> = report
        .fault_windows
        .iter()
        .filter(|w| w.label.starts_with("crash:"))
        .collect();
    if crash_windows.len() != 2 {
        return Err(format!(
            "expected 2 crash windows: {:?}",
            report.fault_windows
        ));
    }
    for w in crash_windows {
        if nominal.tps <= 0.0 || w.tps >= nominal.tps / 2.0 {
            return Err(format!(
                "window {} not degraded: {} vs nominal {}",
                w.label, w.tps, nominal.tps
            ));
        }
    }
    Ok(())
}

#[test]
fn crash_restart_accounting_identity() {
    let _guard = common::serial_guard();
    let run = || {
        run_neuchain(
            Some(crash_plan(Duration::from_secs(1), Duration::from_secs(4))),
            RetryPolicy::standard(),
            200,
            7,
            Duration::from_secs(1),
            50.0,
        )
    };
    let mut report = run();
    assert_accounting_identity(&report);
    if let Err(why) = fault_activity(&report) {
        eprintln!("crash window skewed by host scheduling ({why}); retrying once");
        report = run();
        assert_accounting_identity(&report);
    }
    if let Err(why) = fault_activity(&report) {
        panic!("{why}: {report:?}");
    }
}

#[test]
fn no_fault_plan_is_inert() {
    let _guard = common::serial_guard();
    let report = run_neuchain(
        None,
        RetryPolicy::standard(),
        150,
        3,
        Duration::from_secs(1),
        500.0,
    );
    assert_eq!(report.retried, 0);
    assert_eq!(report.dropped, 0);
    assert_eq!(report.expired, 0);
    assert!(report.fault_windows.is_empty());
    assert_eq!(report.committed, report.submitted as usize);
}

#[test]
fn budget_exhaustion_drops_transactions() {
    let _guard = common::serial_guard();
    // The whole run is inside the outage and backoff is tiny, so every
    // transaction burns its full attempt budget (2 retries) and is
    // dropped — never expired, never committed. Skew-resistant: the
    // window outlasts any possible schedule, and the single 60 s slice
    // puts the default deadline far beyond any host-descheduling gap
    // (which would otherwise expire a tx mid-backoff and break the
    // exact dropped/retried counts).
    let policy = RetryPolicy {
        max_retries: 2,
        base_backoff: Duration::from_millis(1),
        multiplier: 2.0,
        max_backoff: Duration::from_millis(10),
        jitter: 0.0,
        deadline: None,
    };
    let report = run_neuchain(
        Some(crash_plan(Duration::ZERO, Duration::from_secs(600))),
        policy,
        200,
        1,
        Duration::from_secs(60),
        100.0,
    );
    assert!(report.submitted > 0);
    assert_eq!(report.committed, 0);
    assert_eq!(report.expired, 0, "budget must exhaust before the deadline");
    assert_eq!(report.dropped, report.submitted as usize);
    assert_eq!(
        report.retried,
        2 * report.submitted,
        "exactly max_retries re-attempts per transaction"
    );
}

#[test]
fn deadline_clamp_expires_transactions() {
    let _guard = common::serial_guard();
    // Ample attempt budget but backoff pauses that overrun the 500 ms
    // deadline after one retry: every transaction expires instead of
    // exhausting its budget.
    let policy = RetryPolicy {
        max_retries: 100,
        base_backoff: Duration::from_millis(200),
        multiplier: 2.0,
        max_backoff: Duration::from_secs(2),
        jitter: 0.0,
        deadline: Some(Duration::from_millis(500)),
    };
    let report = run_neuchain(
        Some(crash_plan(Duration::ZERO, Duration::from_secs(600))),
        policy,
        100,
        2,
        Duration::from_secs(1),
        100.0,
    );
    assert!(report.submitted > 0);
    assert_eq!(report.committed, 0);
    assert_eq!(report.dropped, 0, "deadline must clamp before the budget");
    assert_eq!(report.expired, report.submitted as usize);
    assert!(report.retried > 0);
}
