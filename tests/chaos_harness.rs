//! The chaos harness end to end: seeded randomized fault schedules judged
//! by the run-level invariant oracle, the stall watchdog turning a hung
//! run into a complete report, and the crash-recoverable driver resuming
//! from a checkpoint to the same report an uninterrupted run produces.

use std::sync::Arc;
use std::time::Duration;

use hammer::core::chaos::{run_chaos_case, ChaosCase};
use hammer::core::checkpoint::RecoveryConfig;
use hammer::core::deploy::{BackendOptions, BackendRegistry};
use hammer::core::driver::{EvalConfig, EvalError, EvalReport, Evaluation};
use hammer::core::machine::ClientMachine;
use hammer::core::retry::RetryPolicy;
use hammer::obs::EventKind;
use hammer::store::kv::KvStore;
use hammer::workload::{ControlSequence, WorkloadConfig};

mod common;

/// A CI-scaled version of the `chaos_sweep` acceptance run: every
/// registered backend under two seeded schedules, zero invariant
/// violations expected. (`chaos_sweep --seeds 10` is the full matrix.)
#[test]
fn oracle_passes_under_seeded_chaos_on_every_backend() {
    let _guard = common::serial_guard();
    for backend in ["ethereum-sim", "fabric-sim", "meepo-sim", "neuchain-sim"] {
        for seed in [7u64, 1312] {
            let case = ChaosCase {
                rate: 50,
                ..ChaosCase::new(backend, seed)
            };
            let verdict = run_chaos_case(&case);
            assert!(
                verdict.passed(),
                "{backend} seed {seed}: {:?}",
                verdict.violations()
            );
        }
    }
}

/// With sealing stalled, submissions pool forever: pending stays positive
/// and the progress mark freezes, so the watchdog must abort the run
/// after its budget — yielding a *complete* report (every transaction in
/// a terminal bucket, `stalled` flagged, a journal event) instead of
/// hanging until the drain deadline.
#[test]
fn watchdog_aborts_a_stalled_run_with_a_complete_report() {
    let _guard = common::serial_guard();
    let clock = hammer::net::SimClock::with_speedup(200.0);
    let net = hammer::net::SimNetwork::new(clock.clone(), hammer::net::LinkConfig::lan());
    net.install_obs(hammer::obs::Obs::new());
    let deployment = BackendRegistry::builtin()
        .deploy_on(
            "neuchain-sim",
            &BackendOptions {
                stall_sealing: true,
                ..BackendOptions::default()
            },
            clock,
            net,
        )
        .unwrap();
    let workload = WorkloadConfig {
        accounts: 200,
        ..WorkloadConfig::default()
    };
    let control = ControlSequence::constant(50, 2, Duration::from_secs(1));
    let config = EvalConfig::builder()
        .machine(ClientMachine::unconstrained())
        .poll_interval(Duration::from_millis(50))
        .drain_timeout(Duration::from_secs(600))
        .stall_budget(Duration::from_secs(5))
        .build()
        .unwrap();
    let report = Evaluation::new(config)
        .run(&deployment, &workload, &control)
        .expect("a stalled run still reports");

    assert!(report.stalled, "watchdog should have fired");
    assert_eq!(report.committed, 0, "sealing was stalled");
    assert_eq!(
        report.timed_out as u64 + report.rejected,
        report.submitted,
        "every pooled transaction lands in a terminal bucket"
    );
    // The abort cut the run far short of the 600 s drain deadline.
    assert!(report.sim_duration < Duration::from_secs(60));
    let obs = deployment.net().obs();
    assert!(
        obs.journal().count_of(EventKind::Stalled) >= 1,
        "the stall is journaled"
    );
}

/// The deterministic projection of a report: everything that must be
/// identical between an uninterrupted run and a killed-then-resumed run
/// on the same seed. Timing fields (TPS, latency, durations) depend on
/// wall-clock scheduling and are exempt.
fn projection(report: &EvalReport) -> impl PartialEq + std::fmt::Debug {
    let mut committed_ids: Vec<_> = report
        .records
        .iter()
        .filter(|r| r.status == hammer::chain::types::TxStatus::Committed)
        .map(|r| r.tx_id)
        .collect();
    committed_ids.sort();
    (
        report.chain.clone(),
        report.submitted,
        report.rejected,
        report.retried,
        report.dropped,
        report.expired,
        report.committed,
        report.failed,
        report.timed_out,
        report.per_client_committed.clone(),
        report.per_shard_committed.clone(),
        committed_ids,
    )
}

fn recovery_workload() -> WorkloadConfig {
    WorkloadConfig {
        accounts: 300,
        seed: 99,
        ..WorkloadConfig::default()
    }
}

fn recovery_config() -> EvalConfig {
    EvalConfig::builder()
        .machine(ClientMachine::unconstrained())
        .poll_interval(Duration::from_millis(50))
        .drain_timeout(Duration::from_secs(120))
        .retry(RetryPolicy::standard())
        .build()
        .unwrap()
}

/// Kill the driver at a (pseudo-random) point mid-run, then resume from
/// the surviving checkpoint on the same chain: the resumed report's
/// deterministic projection must match an uninterrupted run field for
/// field.
#[test]
fn killed_driver_resumes_and_matches_the_uninterrupted_run() {
    let _guard = common::serial_guard();
    let registry = BackendRegistry::builtin();
    let workload = recovery_workload();
    let control = ControlSequence::constant(100, 4, Duration::from_secs(1));

    // Uninterrupted baseline on a fresh deployment.
    let baseline_deploy = registry
        .deploy("neuchain-sim", &BackendOptions::default(), 200.0)
        .unwrap();
    let baseline = Evaluation::new(recovery_config())
        .run(&baseline_deploy, &workload, &control)
        .unwrap();
    drop(baseline_deploy);
    assert_eq!(baseline.submitted, 400);
    assert_eq!(baseline.committed, 400, "clean run commits everything");

    // Vary the kill point across test processes: any slice must work.
    use std::hash::{BuildHasher, Hasher};
    let h = std::collections::hash_map::RandomState::new().build_hasher();
    let kill_ms = 800 + (h.finish() % 2_400); // within (0.8 s, 3.2 s) of a 4 s run
    eprintln!("killing the driver at {kill_ms} ms of simulated time");

    let store = Arc::new(KvStore::new());
    let deployment = registry
        .deploy("neuchain-sim", &BackendOptions::default(), 200.0)
        .unwrap();
    let killed = Evaluation::new(recovery_config()).run_recoverable(
        &deployment,
        &workload,
        &control,
        &RecoveryConfig::new(
            Arc::clone(&store),
            "resume-test",
            Duration::from_millis(200),
        )
        .kill_at(Duration::from_millis(kill_ms)),
    );
    assert!(matches!(killed, Err(EvalError::Killed)), "{killed:?}");
    assert!(
        store.get("hammer/checkpoint/resume-test").is_some(),
        "a periodic checkpoint survives the kill"
    );

    // Resume against the same chain: the checkpointed transactions are
    // already on it; the rest of the stream replays.
    let resumed = Evaluation::new(recovery_config())
        .run_recoverable(
            &deployment,
            &workload,
            &control,
            &RecoveryConfig::new(
                Arc::clone(&store),
                "resume-test",
                Duration::from_millis(200),
            ),
        )
        .expect("resume completes");

    assert_eq!(
        projection(&resumed),
        projection(&baseline),
        "resumed report must match the uninterrupted run"
    );
    assert!(
        store.get("hammer/checkpoint/resume-test").is_none(),
        "a completed run deletes its checkpoint"
    );
}

/// The same kill/resume round trip with the tracker explicitly sharded:
/// the HMCP checkpoint is written from the all-shards-locked aggregate
/// snapshot and replayed back across shards on resume, so the resumed
/// report's deterministic projection must still match an uninterrupted
/// run field for field — the checkpoint codec never sees the sharding.
#[test]
fn sharded_tracker_checkpoint_roundtrip_matches_uninterrupted_run() {
    let _guard = common::serial_guard();
    let registry = BackendRegistry::builtin();
    let workload = recovery_workload();
    let control = ControlSequence::constant(100, 4, Duration::from_secs(1));
    let sharded_config = || {
        EvalConfig::builder()
            .machine(ClientMachine::unconstrained())
            .poll_interval(Duration::from_millis(50))
            .drain_timeout(Duration::from_secs(120))
            .retry(RetryPolicy::standard())
            .tracker_shards(4)
            .build()
            .unwrap()
    };

    let baseline_deploy = registry
        .deploy("neuchain-sim", &BackendOptions::default(), 200.0)
        .unwrap();
    let baseline = Evaluation::new(sharded_config())
        .run(&baseline_deploy, &workload, &control)
        .unwrap();
    drop(baseline_deploy);
    assert_eq!(baseline.committed, 400, "clean run commits everything");

    let store = Arc::new(KvStore::new());
    let deployment = registry
        .deploy("neuchain-sim", &BackendOptions::default(), 200.0)
        .unwrap();
    let killed = Evaluation::new(sharded_config()).run_recoverable(
        &deployment,
        &workload,
        &control,
        &RecoveryConfig::new(
            Arc::clone(&store),
            "sharded-resume",
            Duration::from_millis(200),
        )
        .kill_at(Duration::from_millis(1_700)),
    );
    assert!(matches!(killed, Err(EvalError::Killed)), "{killed:?}");

    let resumed = Evaluation::new(sharded_config())
        .run_recoverable(
            &deployment,
            &workload,
            &control,
            &RecoveryConfig::new(
                Arc::clone(&store),
                "sharded-resume",
                Duration::from_millis(200),
            ),
        )
        .expect("resume completes");

    assert_eq!(
        projection(&resumed),
        projection(&baseline),
        "sharded resume must match the uninterrupted run"
    );
    assert!(
        store.get("hammer/checkpoint/sharded-resume").is_none(),
        "a completed run deletes its checkpoint"
    );
}

/// A checkpoint taken under one run must not silently resume a different
/// one: a mismatched workload seed is refused with a typed error.
#[test]
fn checkpoint_from_a_different_run_is_refused() {
    let _guard = common::serial_guard();
    let registry = BackendRegistry::builtin();
    let control = ControlSequence::constant(100, 4, Duration::from_secs(1));
    let store = Arc::new(KvStore::new());

    let deployment = registry
        .deploy("neuchain-sim", &BackendOptions::default(), 200.0)
        .unwrap();
    let killed = Evaluation::new(recovery_config()).run_recoverable(
        &deployment,
        &recovery_workload(),
        &control,
        &RecoveryConfig::new(Arc::clone(&store), "mismatch", Duration::from_millis(200))
            .kill_at(Duration::from_millis(1_500)),
    );
    assert!(matches!(killed, Err(EvalError::Killed)));

    let other_seed = WorkloadConfig {
        seed: 123,
        ..recovery_workload()
    };
    let err = Evaluation::new(recovery_config())
        .run_recoverable(
            &deployment,
            &other_seed,
            &control,
            &RecoveryConfig::new(store, "mismatch", Duration::from_millis(200)),
        )
        .unwrap_err();
    assert!(
        matches!(err, EvalError::InvalidConfig(ref msg) if msg.contains("different run")),
        "{err:?}"
    );
}
