//! The scenario DSL end to end: a built scenario compiles to a driver
//! configuration deterministically, the JSON corpus round-trips through
//! the builder, runs are reproducible per seed, and every
//! [`ScenarioError`] variant is reachable through build-time validation
//! (typed errors, never panics).

use std::time::Duration;

use hammer::core::retry::RetryPolicy;
use hammer::core::scenario::{corpus, FaultSpec, NodeRef, Scenario, ScenarioError};
use hammer::net::chaos::ChaosConfig;

mod common;

/// A small fault-free scenario for determinism runs: well under
/// neuchain's capacity, so every transaction commits and the verdict is
/// a pure function of the seed.
fn small_scenario() -> Scenario {
    Scenario::builder("dsl-determinism")
        .backend("neuchain-sim")
        .speedup(1000.0)
        .constant_load(100, 3)
        .workload_with(|w| {
            w.accounts = 100;
            w.seed = 41;
        })
        .expect_consensus_liveness(1)
        .expect_min_inclusion(1.0)
        .expect_accounting_identity()
        .expect_no_stall()
        .build()
        .expect("the determinism scenario is statically valid")
}

/// ScenarioBuilder -> EvalConfig -> run -> Verdict is deterministic per
/// seed: the same built scenario, run twice, grades identically and
/// reports the same transaction accounting.
#[test]
fn built_scenario_runs_deterministically() {
    let _guard = common::serial_guard();
    let scenario = small_scenario();
    let first = scenario.run().expect("run must complete");
    let second = scenario.run().expect("run must complete");

    assert!(first.passed(), "violations: {:?}", first.violations());
    let grade = |v: &hammer::core::scenario::Verdict| {
        v.checks
            .iter()
            .map(|c| (c.name, c.passed))
            .collect::<Vec<_>>()
    };
    assert_eq!(grade(&first), grade(&second));
    assert_eq!(first.report.submitted, second.report.submitted);
    assert_eq!(first.report.committed, second.report.committed);
    assert_eq!(first.report.rejected, second.report.rejected);
    assert_eq!(first.stalled, second.stalled);
    assert_eq!(first.report.submitted, 300);
    assert_eq!(first.report.committed, 300);
}

/// The same builder composition compiles to the same scenario: backend,
/// run window, expectations, and the driver configuration all match.
#[test]
fn compilation_is_deterministic() {
    let a = small_scenario();
    let b = small_scenario();
    assert_eq!(a.name(), b.name());
    assert_eq!(a.backend(), b.backend());
    assert_eq!(a.control(), b.control());
    assert_eq!(a.expectations(), b.expectations());
    // EvalConfig carries no PartialEq; its Debug form is the projection.
    assert_eq!(
        format!("{:?}", a.eval_config()),
        format!("{:?}", b.eval_config())
    );
}

/// Every shipped corpus spec parses, and re-parsing the same JSON yields
/// an identical scenario (the parser has no hidden state).
#[test]
fn corpus_round_trips_through_json() {
    let names = corpus::names();
    assert_eq!(names.len(), 6, "the shipped corpus has six scenarios");
    for name in names {
        let spec = corpus::spec(name).expect("listed scenarios have specs");
        let first = Scenario::from_json(spec).expect("corpus spec must parse");
        let second = Scenario::from_json(spec).expect("corpus spec must parse");
        assert_eq!(first.name(), name);
        assert_eq!(first.backend(), second.backend());
        assert_eq!(first.control(), second.control());
        assert_eq!(first.expectations(), second.expectations());
        assert_eq!(first.recoverable(), second.recoverable());
        assert_eq!(
            format!("{:?}", first.eval_config()),
            format!("{:?}", second.eval_config())
        );
    }
}

/// Retargeting preserves the window shape: same slice count, scaled
/// total, new backend — and the result still validates.
#[test]
fn retarget_scales_the_window_and_revalidates() {
    let authored = corpus::load("partition-then-heal").expect("corpus scenario");
    let native_total = authored.control().total();
    let retargeted = authored
        .retarget("fabric-sim", 200.0, 0.1)
        .expect("retargeting onto a registered backend must validate");
    assert_eq!(retargeted.backend(), "fabric-sim");
    assert_eq!(retargeted.speedup(), 200.0);
    assert_eq!(
        retargeted.control().duration(),
        authored.control().duration(),
        "retargeting preserves the window duration"
    );
    let scaled_total = retargeted.control().total();
    assert!(
        (scaled_total as f64 - native_total as f64 * 0.1).abs() <= 1.0,
        "total {native_total} scaled by 0.1 gave {scaled_total}"
    );

    let err = authored.retarget("fabric-sim", 200.0, 0.0).unwrap_err();
    assert!(matches!(err, ScenarioError::Spec(_)), "got {err:?}");
}

// ---- one negative-path probe per ScenarioError variant ----

fn base() -> hammer::core::scenario::ScenarioBuilder {
    Scenario::builder("negative-path").constant_load(10, 2)
}

#[test]
fn unknown_backend_is_a_typed_error() {
    let err = base().backend("no-such-chain").build().unwrap_err();
    match err {
        ScenarioError::UnknownBackend { name, known } => {
            assert_eq!(name, "no-such-chain");
            assert!(known.contains(&"neuchain-sim".to_owned()));
        }
        other => panic!("expected UnknownBackend, got {other:?}"),
    }
}

#[test]
fn invalid_workload_is_a_typed_error() {
    let err = base()
        .workload_with(|w| w.accounts = 0)
        .build()
        .unwrap_err();
    assert!(matches!(err, ScenarioError::Workload(_)), "got {err:?}");
}

#[test]
fn missing_or_inconsistent_run_window_is_a_typed_error() {
    let err = Scenario::builder("no-window").build().unwrap_err();
    assert!(matches!(err, ScenarioError::RunWindow(_)), "got {err:?}");

    // A per-transaction retry deadline longer than the control slice
    // would let retries of slice N bleed arbitrarily far into slice N+1.
    let long_deadline = RetryPolicy {
        deadline: Some(Duration::from_secs(30)),
        ..RetryPolicy::standard()
    };
    let err = base().retry(long_deadline).build().unwrap_err();
    assert!(matches!(err, ScenarioError::RunWindow(_)), "got {err:?}");
}

#[test]
fn malformed_chaos_is_a_typed_error() {
    // Empty window: start == end.
    let err = base()
        .fault(FaultSpec::Crash {
            node: NodeRef::Ingress(0),
            start: Duration::from_secs(2),
            end: Duration::from_secs(2),
        })
        .build()
        .unwrap_err();
    assert!(matches!(err, ScenarioError::Chaos(_)), "got {err:?}");

    // A seeded schedule that can generate nothing.
    let err = base()
        .chaos_seeded(
            7,
            ChaosConfig {
                max_windows: 0,
                ..ChaosConfig::default()
            },
        )
        .build()
        .unwrap_err();
    assert!(matches!(err, ScenarioError::Chaos(_)), "got {err:?}");

    // A one-group "partition".
    let err = base()
        .fault(FaultSpec::Partition {
            groups: vec![vec![NodeRef::Rest]],
            start: Duration::from_secs(1),
            end: Duration::from_secs(2),
        })
        .build()
        .unwrap_err();
    assert!(matches!(err, ScenarioError::Chaos(_)), "got {err:?}");
}

#[test]
fn out_of_range_expectation_is_a_typed_error() {
    let err = base().expect_min_inclusion(0.0).build().unwrap_err();
    assert!(matches!(err, ScenarioError::Expectation(_)), "got {err:?}");

    let err = base()
        .expect_latency_slo(1.5, Duration::from_secs(1))
        .build()
        .unwrap_err();
    assert!(matches!(err, ScenarioError::Expectation(_)), "got {err:?}");
}

#[test]
fn malformed_recovery_is_a_typed_error() {
    let err = base()
        .recover(Duration::ZERO, Duration::from_secs(1))
        .build()
        .unwrap_err();
    assert!(matches!(err, ScenarioError::Recovery(_)), "got {err:?}");
}

#[test]
fn bad_json_spec_is_a_typed_error() {
    let err = Scenario::from_json("{ not json").unwrap_err();
    assert!(matches!(err, ScenarioError::Spec(_)), "got {err:?}");

    let err = corpus::load("no-such-scenario").unwrap_err();
    assert!(matches!(err, ScenarioError::Spec(_)), "got {err:?}");
}

#[test]
fn rejected_driver_config_is_a_typed_error() {
    // tracker_shards is bounds-checked by the EvalConfig builder; the
    // scenario layer surfaces that rejection at build time.
    let err = base().tracker_shards(0).build().unwrap_err();
    assert!(matches!(err, ScenarioError::Config(_)), "got {err:?}");
}
