//! Multi-process deploy mode end to end: a supervised `node-host` OS
//! process behind real TCP, driven by the unmodified driver, with
//! crash-fault windows realised as SIGKILL of the actual process.
//!
//! These are the acceptance tests for the distributed mode: the run must
//! complete with the accounting identity and fault-window attribution
//! intact, the supervisor must actually kill and restart the process,
//! and teardown must leave no orphaned children behind.

use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Duration;

use hammer::core::chaos::{check_report, live_children};
use hammer::core::deploy::{
    reconnect_policy_for, BackendOptions, BackendRegistry, DeployMode, SupervisorConfig,
};
use hammer::core::driver::{EvalConfig, Evaluation};
use hammer::core::retry::RetryPolicy;
use hammer::core::scenario::Scenario;
use hammer::net::{FaultPlan, LinkConfig, SimClock, SimNetwork};
use hammer::workload::{ControlSequence, WorkloadConfig};

/// The probes below count this process's children, so supervisor tests
/// must not overlap; the harness runs same-binary tests in parallel.
fn serial() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(Mutex::default)
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Cargo builds the workspace's bins for integration tests; point the
/// supervisor at the exact artifact instead of relying on path probing.
fn supervisor_config() -> SupervisorConfig {
    SupervisorConfig {
        node_host: Some(env!("CARGO_BIN_EXE_node-host").into()),
        ..SupervisorConfig::default()
    }
}

fn workload(backend: &str) -> WorkloadConfig {
    WorkloadConfig {
        accounts: 100,
        chain_name: backend.to_owned(),
        ..WorkloadConfig::default()
    }
}

#[test]
fn supervised_run_completes_with_accounting_identity() {
    let _guard = serial();
    let children_before = live_children();
    let backend = "neuchain-sim";
    let clock = SimClock::with_speedup(100.0);
    let net = SimNetwork::new(clock.clone(), LinkConfig::lan());
    let retry = RetryPolicy::standard();
    let deployment = BackendRegistry::builtin()
        .deploy_multi(
            backend,
            &BackendOptions::default(),
            clock.clone(),
            net.clone(),
            supervisor_config(),
            reconnect_policy_for(&retry, &clock),
        )
        .expect("multi-process deploy");
    assert_eq!(deployment.client().chain_name(), backend);
    // The remote topology is mirrored locally so fault specs and the
    // observability surface see the same node names as in-process mode.
    assert!(!net.endpoint_names().is_empty());

    let control = ControlSequence::constant(50, 4, Duration::from_secs(1));
    let config = EvalConfig::builder()
        .poll_interval(Duration::from_millis(50))
        .drain_timeout(Duration::from_secs(60))
        .retry(retry)
        .build()
        .expect("valid config");
    let report = Evaluation::new(config)
        .run(&deployment, &workload(backend), &control)
        .expect("run over TCP");

    assert_eq!(report.submitted, 200);
    assert!(
        report.committed > 150,
        "committed only {} of {}",
        report.committed,
        report.submitted
    );
    for check in check_report(&report, None) {
        assert!(check.passed, "{}: {}", check.name, check.detail);
    }

    deployment.down();
    drop(deployment);
    net.shutdown_and_join();
    assert!(
        live_children() <= children_before,
        "node-host process leaked past teardown"
    );
}

#[test]
fn crash_window_sigkills_and_restarts_the_node_process() {
    let _guard = serial();
    let children_before = live_children();
    let backend = "neuchain-sim";
    let clock = SimClock::with_speedup(10.0);
    let net = SimNetwork::new(clock.clone(), LinkConfig::lan());
    let retry = RetryPolicy::standard();
    let deployment = BackendRegistry::builtin()
        .deploy_multi(
            backend,
            &BackendOptions::default(),
            clock.clone(),
            net.clone(),
            supervisor_config(),
            reconnect_policy_for(&retry, &clock),
        )
        .expect("multi-process deploy");
    let supervisor = deployment.supervisor().expect("multi mode").clone();
    let ingress = deployment.chain().ingress_nodes();
    let victim = ingress.first().expect("neuchain has ingress nodes");

    // One crash window in the middle of an 8-slice run. The plan lands
    // on the local net (driver attribution) and on the supervisor, which
    // realises it as SIGKILL + restart of the real process.
    let plan = FaultPlan::new().crash(victim, Duration::from_secs(2), Duration::from_secs(4));
    deployment.install_faults(plan).expect("install faults");

    let control = ControlSequence::constant(30, 8, Duration::from_secs(1));
    let config = EvalConfig::builder()
        .poll_interval(Duration::from_millis(50))
        .drain_timeout(Duration::from_secs(60))
        .retry(retry)
        .stall_budget(Duration::from_secs(30))
        .build()
        .expect("valid config");
    let report = Evaluation::new(config)
        .run(&deployment, &workload(backend), &control)
        .expect("run survives the crash window");

    let stats = supervisor.stats();
    assert!(stats.kills >= 1, "no SIGKILL delivered: {stats:?}");
    assert!(stats.restarts >= 1, "node never restarted: {stats:?}");
    assert!(
        supervisor.node_alive(),
        "node should be healthy again after the window"
    );

    // Completeness under real process death: the accounting identity and
    // the per-window attribution still hold, and the watchdog did not
    // fire (the outage is far shorter than the stall budget).
    assert!(!report.stalled, "stall watchdog aborted the run");
    assert!(report.committed > 0, "nothing committed across the crash");
    let plan = deployment.net().fault_plan();
    for check in check_report(&report, plan.as_deref()) {
        assert!(check.passed, "{}: {}", check.name, check.detail);
    }
    // The crash window plus the nominal remainder are attributed.
    assert_eq!(report.fault_windows.len(), 2);

    deployment.down();
    drop(deployment);
    net.shutdown_and_join();
    assert!(
        live_children() <= children_before,
        "node-host process leaked past teardown"
    );
}

#[test]
fn scenario_dsl_drives_multi_process_crash_runs() {
    let _guard = serial();
    let children_before = live_children();
    // The DSL path resolves node-host from the environment: point it at
    // the test-build artifact explicitly.
    std::env::set_var("HAMMER_NODE_HOST", env!("CARGO_BIN_EXE_node-host"));

    let spec = r#"{
        "name": "multi-process-crash-smoke",
        "backend": "neuchain-sim",
        "speedup": 10,
        "deploy_mode": "multi_process",
        "workload": {"accounts": 100},
        "control": {"shape": "constant", "rate": 30, "slices": 8},
        "retry": "standard",
        "chaos": {"faults": [
            {"kind": "crash", "node": "ingress:0", "start_ms": 2000, "end_ms": 4000}
        ]},
        "expectations": [
            {"kind": "accounting_identity"},
            {"kind": "no_stall"}
        ]
    }"#;
    let scenario = Scenario::from_json(spec).expect("spec parses");
    assert_eq!(scenario.deploy_mode(), DeployMode::MultiProcess);

    let verdict = scenario.run().expect("multi-process scenario run");
    assert!(
        verdict.passed(),
        "violations: {:?}",
        verdict
            .violations()
            .iter()
            .map(|c| format!("{}: {}", c.name, c.detail))
            .collect::<Vec<_>>()
    );
    let stats = verdict.process_faults.expect("multi mode reports stats");
    assert!(stats.kills >= 1, "no SIGKILL delivered: {stats:?}");
    assert!(stats.restarts >= 1, "node never restarted: {stats:?}");
    assert!(verdict.to_json().contains("\"process_faults\""));

    // run_on tears down deterministically before returning.
    assert!(
        live_children() <= children_before,
        "node-host process leaked past teardown"
    );
}
