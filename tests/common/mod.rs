//! Shared helpers for the integration-test binaries.

use parking_lot::{Mutex, MutexGuard};

/// Chain simulations are timing-sensitive; on small CI hosts running them
/// concurrently within one test binary starves the simulator threads, so
/// timing-sensitive tests serialise on this guard. The static is
/// per-binary (each integration test crate compiles its own copy), which
/// matches how the harness parallelises: threads within a binary, not
/// across binaries.
static GUARD: Mutex<()> = Mutex::new(());

/// Takes the binary-wide serialisation guard. Hold the returned guard for
/// the whole test body:
///
/// ```ignore
/// let _guard = common::serial_guard();
/// ```
pub fn serial_guard() -> MutexGuard<'static, ()> {
    GUARD.lock()
}

// # Fabric commit band (referenced by tests/cross_chain.rs)
//
// The zipf-0.99 SmallBank workload on `fabric_default()` (100 tx/s x 6 s
// = 600 txs at 400x speed-up) commits fewer than 600: the EOV pipeline
// loses hot-account transactions to intra-block MVCC conflicts, and the
// exact block composition jitters with wall-clock scheduling noise, so
// the commit count is a band, not a constant.
//
// Derivation of the asserted floor: run the fabric cross-chain test in
// release mode N>=10 times and read the printed `fabric committed =`
// lines, e.g.
//
//   for i in $(seq 1 10); do \
//     cargo test --release --test cross_chain fabric -- --nocapture \
//       2>&1 | grep 'fabric committed'; done
//
// Measured bands, oldest first:
//
// * pre-watchdog driver (PR 3): [503, 526]
// * watchdog-instrumented driver (PR 5, stall probe in the monitor
//   loop): [510, 529] — the probe reads three atomics and a block
//   counter per poll tick, which does not shift the band's floor.
//
// The assertion uses `> 480`: ~6% below every observed floor, so
// scheduling noise cannot flake it, while a real sealing or validation
// regression (which commits far less than the band) still trips it.
