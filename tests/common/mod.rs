//! Shared helpers for the integration-test binaries.

use parking_lot::{Mutex, MutexGuard};

/// Chain simulations are timing-sensitive; on small CI hosts running them
/// concurrently within one test binary starves the simulator threads, so
/// timing-sensitive tests serialise on this guard. The static is
/// per-binary (each integration test crate compiles its own copy), which
/// matches how the harness parallelises: threads within a binary, not
/// across binaries.
static GUARD: Mutex<()> = Mutex::new(());

/// Takes the binary-wide serialisation guard. Hold the returned guard for
/// the whole test body:
///
/// ```ignore
/// let _guard = common::serial_guard();
/// ```
pub fn serial_guard() -> MutexGuard<'static, ()> {
    GUARD.lock()
}
