//! §V-C correctness audit (integration scale): the driver's statistics
//! must match the node-side ground truth exactly.
//!
//! The paper's run is 100 000 transactions at 600 TPS; the full-size
//! version lives in `cargo run --release -p bench --bin correctness_check`.
//! Here a 6 000-transaction run keeps CI fast while exercising the same
//! paths: block polling, Bloom-filtered matching, per-transaction status
//! bookkeeping, Merkle verification, and the ledger cross-check.

use std::collections::HashMap;
use std::time::Duration;

use hammer::chain::types::TxStatus;
use hammer::core::deploy::{ChainSpec, Deployment};
use hammer::core::driver::{EvalConfig, Evaluation};
use hammer::core::machine::ClientMachine;
use hammer::fabric::FabricConfig;
use hammer::workload::{ControlSequence, WorkloadConfig};

#[test]
fn driver_statistics_match_node_logs() {
    // Same configuration as the full-size correctness_check binary: the
    // audit is about accounting, so give the chain headroom for 600 TPS
    // (validation 1 ms/tx => ~1000 TPS ceiling).
    let deployment = Deployment::up(
        ChainSpec::Fabric(FabricConfig {
            validate_cost: Duration::from_millis(1),
            inbox_capacity: 50_000,
            ..FabricConfig::default()
        }),
        400.0,
    );
    let workload = WorkloadConfig {
        accounts: 5_000,
        clients: 4,
        threads_per_client: 2,
        chain_name: "fabric-sim".to_owned(),
        ..WorkloadConfig::default()
    };
    let control = ControlSequence::constant(600, 10, Duration::from_secs(1));
    let config = EvalConfig::builder()
        .machine(ClientMachine::unconstrained())
        .drain_timeout(Duration::from_secs(120))
        .build()
        .expect("valid config");
    let report = Evaluation::new(config)
        .run(&deployment, &workload, &control)
        .expect("run failed");

    assert_eq!(report.submitted, 6_000, "all transactions submitted");
    assert_eq!(
        report.committed + report.failed + report.timed_out,
        6_000,
        "every record classified exactly once"
    );
    assert!(
        report.committed > 5_000,
        "most must commit (got {})",
        report.committed
    );

    // "Log analysis": walk the ledger like the paper's Python script
    // walks the peer logs.
    let chain = deployment.client();
    let height = chain.latest_height(0).expect("height");
    let mut ledger_status: HashMap<_, bool> = HashMap::new();
    for h in 1..=height {
        let block = chain.block_at(0, h).expect("query").expect("present");
        assert!(block.verify_merkle_root(), "block {h} merkle root broken");
        for (tx_id, ok) in block.entries() {
            assert!(
                ledger_status.insert(tx_id, ok).is_none(),
                "tx {tx_id} appears twice on the ledger"
            );
        }
    }

    for record in &report.records {
        match (record.status, ledger_status.get(&record.tx_id)) {
            (TxStatus::Committed, Some(true)) => {}
            (TxStatus::Failed, Some(false)) => {}
            (TxStatus::Failed, None) => {} // driver-side rejection
            (TxStatus::TimedOut, None) => {}
            (status, on_ledger) => {
                panic!("driver/ledger mismatch: {status:?} vs {on_ledger:?}")
            }
        }
    }

    // Latency sanity: every committed record's end time follows its start.
    for record in &report.records {
        if record.status == TxStatus::Committed {
            let end = record.end.expect("committed implies end time");
            assert!(end >= record.start, "negative latency");
        }
    }
}
