//! Distributed testing through the public facade: two driver servers on
//! one SUT, with the Bloom filter skimming foreign transactions — the
//! scenario Algorithm 1's filter exists for.

use std::time::Duration;

use hammer::core::deploy::{ChainSpec, Deployment};
use hammer::core::driver::EvalConfig;
use hammer::core::machine::ClientMachine;
use hammer::core::run_distributed;
use hammer::workload::{ControlSequence, WorkloadConfig};

#[test]
fn two_driver_servers_one_chain() {
    let deployment = Deployment::up(ChainSpec::neuchain_default(), 400.0);
    let workload = WorkloadConfig {
        accounts: 200,
        clients: 2,
        threads_per_client: 2,
        chain_name: "neuchain-sim".to_owned(),
        ..WorkloadConfig::default()
    };
    let control = ControlSequence::constant(40, 4, Duration::from_secs(1));
    let config = EvalConfig::builder()
        .machine(ClientMachine::unconstrained())
        .drain_timeout(Duration::from_secs(60))
        .build()
        .expect("valid config");
    let report = run_distributed(&deployment, &workload, &control, &config, 2)
        .expect("distributed run failed");

    // Both drivers completed their disjoint 160-tx workloads.
    assert_eq!(report.per_driver.len(), 2);
    assert_eq!(report.combined_submitted(), 320);
    assert!(
        report.combined_committed() > 280,
        "combined = {}",
        report.combined_committed()
    );

    // Every driver observed the *other* driver's transactions in the
    // shared blocks and rejected them via the Bloom filter without
    // touching its hash index.
    for (i, stats) in report.index_stats().iter().enumerate() {
        let stats = stats.expect("task-processing mode exposes index stats");
        assert!(
            stats.bloom_rejections >= 100,
            "driver {i}: only {} foreign rejections",
            stats.bloom_rejections
        );
    }

    // The drivers' commit sets are disjoint (different workload seeds).
    let ids_0: std::collections::HashSet<u64> = report.per_driver[0]
        .records
        .iter()
        .map(|r| r.tx_id.fingerprint())
        .collect();
    let overlap = report.per_driver[1]
        .records
        .iter()
        .filter(|r| ids_0.contains(&r.tx_id.fingerprint()))
        .count();
    assert_eq!(overlap, 0, "driver workloads must be disjoint");
}
