//! Backend conformance: the contract every registered chain must honour,
//! checked against each entry of [`BackendRegistry::builtin`] rather than
//! a hard-coded chain list — registering a new backend automatically
//! subjects it to the same sweep.
//!
//! The contract, per backend:
//!
//! 1. Submissions are sealed, and every accepted transaction surfaces as
//!    exactly one commit event carrying its id (and the ledgers audit
//!    clean afterwards).
//! 2. The driver's accounting identity holds:
//!    `committed + failed + timed_out + rejected + dropped + expired ==
//!    submitted`.
//! 3. A blackholed ingress endpoint rejects submissions with a
//!    *transient* (retryable) error while the fault window is open.
//! 4. A bounded ingress under stalled sealing overflows to
//!    [`ErrorKind::Backpressure`], not a panic or silent drop.
//! 5. Dropping a deployment joins every node thread — no leaks.
//!
//! Contracts 1–4 are checked under **both deploy modes**: the backend
//! in-process on the simulated network, and the same backend as a
//! supervised `node-host` OS process behind loopback TCP. The generic
//! interface promises identical behaviour either way.

use std::collections::HashSet;
use std::time::Duration;

use hammer::chain::client::ErrorKind;
use hammer::chain::smallbank::Op;
use hammer::chain::types::{Address, SignedTransaction, Transaction};
use hammer::core::deploy::{
    reconnect_policy_for, BackendOptions, BackendRegistry, DeployMode, Deployment, SupervisorConfig,
};
use hammer::core::driver::EvalConfig;
use hammer::core::driver::Evaluation;
use hammer::core::machine::ClientMachine;
use hammer::core::retry::RetryPolicy;
use hammer::crypto::sig::SigParams;
use hammer::crypto::Keypair;
use hammer::net::{FaultPlan, LinkConfig, SimClock, SimNetwork};
use hammer::workload::{ControlSequence, WorkloadConfig};

mod common;

const BOTH_MODES: [DeployMode; 2] = [DeployMode::InProcess, DeployMode::MultiProcess];

/// Deploys `name` under `mode` on a fresh clock/net pair. Multi-process
/// deployments point the supervisor at the test build's own `node-host`
/// artifact and derive the TCP reconnect policy from the standard retry
/// policy, exactly as the scenario runner does.
fn deploy_in_mode(
    registry: &BackendRegistry,
    name: &str,
    opts: &BackendOptions,
    speedup: f64,
    mode: DeployMode,
) -> (Deployment, SimNetwork) {
    let clock = SimClock::with_speedup(speedup);
    let net = SimNetwork::new(clock.clone(), LinkConfig::cloud_100mbps());
    let deployment = match mode {
        DeployMode::InProcess => registry.deploy_on(name, opts, clock, net.clone()).unwrap(),
        DeployMode::MultiProcess => registry
            .deploy_multi(
                name,
                opts,
                clock.clone(),
                net.clone(),
                SupervisorConfig {
                    node_host: Some(env!("CARGO_BIN_EXE_node-host").into()),
                    ..SupervisorConfig::default()
                },
                reconnect_policy_for(&RetryPolicy::standard(), &clock),
            )
            .unwrap_or_else(|e| panic!("{name} ({}): {e}", mode.name())),
    };
    (deployment, net)
}

/// A correctly signed deposit to a per-nonce account. Distinct accounts
/// keep Fabric's MVCC validation conflict-free (every event must report
/// `success`) and spread Meepo's routing across both shards.
fn deposit(chain_name: &str, nonce: u64) -> SignedTransaction {
    Transaction {
        client_id: 0,
        server_id: 0,
        nonce,
        op: Op::DepositChecking {
            account: conformance_account(nonce),
            amount: 1,
        },
        chain_name: chain_name.to_owned(),
        contract_name: "smallbank".to_owned(),
    }
    .sign(&Keypair::from_seed(11), &SigParams::fast())
}

fn conformance_account(nonce: u64) -> Address {
    Address::from_name(&format!("conf-{nonce}"))
}

#[test]
fn every_backend_seals_submissions_into_matching_commit_events() {
    let _guard = common::serial_guard();
    let registry = BackendRegistry::builtin();
    for mode in BOTH_MODES {
        for name in registry.names() {
            let (deployment, net) =
                deploy_in_mode(&registry, name, &BackendOptions::default(), 1000.0, mode);
            const TOTAL: u64 = 40;
            for nonce in 0..TOTAL {
                deployment.seed_account(conformance_account(nonce), 1_000, 1_000);
            }
            let events = deployment.client().subscribe_commits();
            let mut ids = HashSet::new();
            for nonce in 0..TOTAL {
                ids.insert(
                    deployment
                        .client()
                        .submit(deposit(name, nonce))
                        .unwrap_or_else(|e| {
                            panic!("{name} ({}): submission refused: {e}", mode.name())
                        }),
                );
            }
            let mut seen = HashSet::new();
            while seen.len() < ids.len() {
                let event = events
                    .recv_timeout(Duration::from_secs(30))
                    .unwrap_or_else(|_| {
                        panic!(
                            "{name} ({}): commit events dried up at {}/{}",
                            mode.name(),
                            seen.len(),
                            ids.len()
                        )
                    });
                assert!(
                    ids.contains(&event.tx_id),
                    "{name} ({}): commit event for a transaction never submitted",
                    mode.name()
                );
                assert!(
                    seen.insert(event.tx_id),
                    "{name} ({}): transaction committed twice",
                    mode.name()
                );
                assert!(
                    event.success,
                    "{name} ({}): conflict-free deposit reported as failed",
                    mode.name()
                );
            }
            deployment
                .chain()
                .verify_ledgers()
                .unwrap_or_else(|e| panic!("{name} ({}): ledger audit failed: {e}", mode.name()));
            deployment.down();
            drop(deployment);
            net.shutdown_and_join();
        }
    }
}

#[test]
fn accounting_identity_holds_for_every_backend() {
    let _guard = common::serial_guard();
    let registry = BackendRegistry::builtin();
    for mode in BOTH_MODES {
        // Real TCP round-trips per submission: give the multi-process
        // pass a gentler clock so the run window is not vanishingly
        // short in wall time.
        let speedup = match mode {
            DeployMode::InProcess => 400.0,
            DeployMode::MultiProcess => 100.0,
        };
        for name in registry.names() {
            let (deployment, net) =
                deploy_in_mode(&registry, name, &BackendOptions::default(), speedup, mode);
            let workload = WorkloadConfig {
                accounts: 1_000,
                chain_name: name.to_owned(),
                ..WorkloadConfig::default()
            };
            let control = ControlSequence::constant(60, 4, Duration::from_secs(1));
            let config = EvalConfig::builder()
                .machine(ClientMachine::unconstrained())
                .retry(RetryPolicy::standard())
                .drain_timeout(Duration::from_secs(120))
                .build()
                .expect("valid config");
            let report = Evaluation::new(config)
                .run(&deployment, &workload, &control)
                .unwrap_or_else(|e| panic!("{name} ({}): evaluation failed: {e}", mode.name()));
            let terminal = (report.committed
                + report.failed
                + report.timed_out
                + report.dropped
                + report.expired) as u64
                + report.rejected;
            assert_eq!(
                terminal,
                report.submitted,
                "{name} ({}): every submission must land in exactly one terminal bucket \
                 (committed {} + failed {} + timed_out {} + dropped {} + expired {} \
                 + rejected {} != submitted {})",
                mode.name(),
                report.committed,
                report.failed,
                report.timed_out,
                report.dropped,
                report.expired,
                report.rejected,
                report.submitted
            );
            assert!(
                report.committed > 0,
                "{name} ({}): nothing committed",
                mode.name()
            );
            deployment.down();
            drop(deployment);
            net.shutdown_and_join();
        }
    }
}

#[test]
fn blackholed_ingress_rejects_with_a_transient_error() {
    let _guard = common::serial_guard();
    let registry = BackendRegistry::builtin();
    for mode in BOTH_MODES {
        for name in registry.names() {
            let (deployment, net) =
                deploy_in_mode(&registry, name, &BackendOptions::default(), 1000.0, mode);
            // Blackhole every ingress endpoint the chain reports (sharded
            // chains report one per shard) for the whole run. In multi
            // mode the plan is forwarded over the wire and acts on the
            // node process's own network.
            let mut plan = FaultPlan::new();
            for node in deployment.chain().ingress_nodes() {
                plan = plan.blackhole(&node, Duration::ZERO, Duration::from_secs(3_600));
            }
            deployment.install_faults(plan).expect("plan installs");
            let err = deployment
                .client()
                .submit(deposit(name, 0))
                .expect_err("submission through a blackholed ingress must fail");
            assert_eq!(
                err.kind(),
                ErrorKind::Transient,
                "{name} ({}): blackhole must surface as retryable, got {err}",
                mode.name()
            );
            deployment.down();
            drop(deployment);
            net.shutdown_and_join();
        }
    }
}

#[test]
fn bounded_ingress_overflows_to_backpressure() {
    let _guard = common::serial_guard();
    let registry = BackendRegistry::builtin();
    // Tiny pool, sealing stalled for an hour: the pool cannot drain, so a
    // burst of submissions must hit the bound within a few multiples of
    // the capacity (Fabric's endorsers may swallow one burst first). The
    // multi-process pass proves the options survive the trip through the
    // node-host command line.
    let opts = BackendOptions {
        mempool_capacity: Some(4),
        stall_sealing: true,
    };
    for mode in BOTH_MODES {
        for name in registry.names() {
            let (deployment, net) = deploy_in_mode(&registry, name, &opts, 1000.0, mode);
            let overflow =
                (0..64u64).find_map(|nonce| deployment.client().submit(deposit(name, nonce)).err());
            let err = overflow.unwrap_or_else(|| {
                panic!(
                    "{name} ({}): 64 submissions never overflowed a pool of 4",
                    mode.name()
                )
            });
            assert_eq!(
                err.kind(),
                ErrorKind::Backpressure,
                "{name} ({}): overflow must be backpressure, got {err}",
                mode.name()
            );
            deployment.down();
            drop(deployment);
            net.shutdown_and_join();
        }
    }
}

fn live_threads() -> usize {
    std::fs::read_dir("/proc/self/task")
        .expect("procfs is available on the test hosts")
        .count()
}

#[test]
fn dropping_a_deployment_joins_every_node_thread() {
    let _guard = common::serial_guard();
    let registry = BackendRegistry::builtin();
    // Warm-up run so process-wide lazily started threads (signature
    // verification pools etc.) are already alive when the baseline is
    // taken.
    {
        let warmup = registry
            .deploy("neuchain-sim", &BackendOptions::default(), 1000.0)
            .unwrap();
        warmup.seed_account(conformance_account(0), 1_000, 1_000);
        let events = warmup.client().subscribe_commits();
        warmup.client().submit(deposit("neuchain-sim", 0)).unwrap();
        events
            .recv_timeout(Duration::from_secs(30))
            .expect("warm-up commit");
    }
    let baseline = live_threads();
    for name in registry.names() {
        let deployment = registry
            .deploy(name, &BackendOptions::default(), 1000.0)
            .unwrap();
        assert!(
            live_threads() > baseline,
            "{name}: a running deployment must hold live node threads"
        );
        deployment.seed_account(conformance_account(1), 1_000, 1_000);
        deployment.client().submit(deposit(name, 1)).unwrap();
        drop(deployment);
        assert_eq!(
            live_threads(),
            baseline,
            "{name}: dropped deployment leaked threads"
        );
    }
}
