#!/usr/bin/env sh
# One-command offline CI gate: formatting, lints, the tier-1 suite, and
# the error-taxonomy grep (no direct `ChainError::` variant use outside
# hammer-chain — retry decisions must go through kind()/is_retryable()).
#
# Usage: scripts/ci_check.sh
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (-D warnings)"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> tier-1: cargo build --release && cargo test"
cargo build --workspace --release --offline
cargo test --workspace --release --offline -q

echo "==> grep gate: ChainError variants stay inside hammer-chain"
# `ChainError::constructor(...)` helpers (lowercase) are the public API;
# only variant paths (uppercase after ::) are forbidden outside the
# defining crate.
violations=$(grep -rn 'ChainError::[A-Z]' crates src examples tests benches 2>/dev/null \
    | grep -v '^crates/hammer-chain/' || true)
if [ -n "$violations" ]; then
    echo "ci_check: direct ChainError variant use outside hammer-chain:" >&2
    echo "$violations" >&2
    exit 1
fi

echo "ci_check: all gates passed"
