#!/usr/bin/env sh
# One-command offline CI gate: formatting, lints, the tier-1 suite, and
# the error-taxonomy grep (no direct `ChainError::` variant use outside
# hammer-chain — retry decisions must go through kind()/is_retryable()).
#
# Usage: scripts/ci_check.sh
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (-D warnings)"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> cargo doc (-D warnings)"
# Vendored crates.io stand-ins (vendor/*) mimic external APIs and are
# exempt from the documentation gate; every first-party crate must
# document cleanly.
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --offline --quiet \
    --exclude rand --exclude proptest --exclude criterion \
    --exclude crossbeam --exclude parking_lot

echo "==> tier-1: cargo build --release && cargo test"
cargo build --workspace --release --offline
cargo test --workspace --release --offline -q

echo "==> grep gate: ChainError variants stay inside hammer-chain"
# `ChainError::constructor(...)` helpers (lowercase) are the public API;
# only variant paths (uppercase after ::) are forbidden outside the
# defining crate.
violations=$(grep -rn 'ChainError::[A-Z]' crates src examples tests benches 2>/dev/null \
    | grep -v '^crates/hammer-chain/' || true)
if [ -n "$violations" ]; then
    echo "ci_check: direct ChainError variant use outside hammer-chain:" >&2
    echo "$violations" >&2
    exit 1
fi

echo "==> grep gate: sim crates stay on the node kernel"
# The four sim crates are consensus policies on the shared chain-node
# runtime: thread lifecycle belongs to the kernel's Worker/shutdown-join
# machinery, and block-seal instrumentation (sealed counters, mempool
# gauge, block_seal journal) is emitted by Kernel::seal_block only.
# Hand-rolled threads or duplicate instrumentation in a sim crate means
# the kernel is being bypassed.
sim_crates="crates/hammer-ethereum crates/hammer-fabric crates/hammer-neuchain crates/hammer-meepo"
violations=$(grep -rnE 'thread::Builder::new|thread::spawn' $sim_crates 2>/dev/null || true)
if [ -n "$violations" ]; then
    echo "ci_check: raw thread creation in a sim crate (use kernel Workers):" >&2
    echo "$violations" >&2
    exit 1
fi
violations=$(grep -rnE 'hammer_chain_blocks_sealed_total|hammer_chain_txs_sealed_total|hammer_chain_mempool_depth|journal\(\)\.block_seal|block_seal\(' $sim_crates 2>/dev/null || true)
if [ -n "$violations" ]; then
    echo "ci_check: direct block-seal instrumentation in a sim crate (Kernel::seal_block emits it):" >&2
    echo "$violations" >&2
    exit 1
fi

echo "==> obs-overhead smoke: disabled registry must not tax the hot path"
# Short samples (the vendored criterion has no CLI filter, so the whole
# group runs): the sign_obs_disabled/sign_plain ratio must stay within
# noise. The smoke threshold is looser than bench_snapshot.sh's 5% gate
# because 5 ms samples on a loaded 1-core host are jittery.
SMOKE_JSON="$(mktemp)"
CRITERION_JSON="$SMOKE_JSON" CRITERION_SAMPLE_MS=5 \
    cargo bench --offline -p bench --bench obs_overhead >/dev/null
plain=$(awk -F'"mean_ns":' '/"obs_signing\/sign_plain"/ { split($2, a, ","); print a[1] }' "$SMOKE_JSON")
disabled=$(awk -F'"mean_ns":' '/"obs_signing\/sign_obs_disabled"/ { split($2, a, ","); print a[1] }' "$SMOKE_JSON")
rm -f "$SMOKE_JSON"
if [ -z "$plain" ] || [ -z "$disabled" ]; then
    echo "ci_check: obs signing results missing from smoke run" >&2
    exit 1
fi
awk -v p="$plain" -v d="$disabled" 'BEGIN {
    r = d / p
    printf "disabled-obs signing overhead (smoke): %.3fx\n", r
    if (r > 1.25) {
        print "ci_check: disabled-obs overhead far above noise" > "/dev/stderr"
        exit 1
    }
}'

echo "==> driver-ceiling smoke: sharded tracker accounting identity"
# Small sweep point (2 shards x 50k in-flight) of the driver_ceiling
# bench: the bin asserts the accounting identity internally and exits
# non-zero on any mismatch; the grep pins the summary line too.
ceiling_out=$(cargo run --release --offline -p bench --bin driver_ceiling -- --smoke)
echo "$ceiling_out" | tail -n 3
if ! echo "$ceiling_out" | grep -q 'accounting identity holds'; then
    echo "ci_check: driver_ceiling accounting identity missing" >&2
    exit 1
fi

echo "==> chaos smoke: seeded schedules x all backends, invariant oracle"
# Fixed small matrix (3 seeds, 20 one-second slices) so the gate stays
# well under a minute on a 1-core host; the full acceptance matrix is
# `chaos_sweep --seeds 10`. The binary exits non-zero on any violation;
# the grep is a belt-and-suspenders check on its summary line.
chaos_out=$(cargo run --release --offline -p bench --bin chaos_sweep -- \
    --seeds 3 --slices 20)
echo "$chaos_out" | tail -n 1
if ! echo "$chaos_out" | grep -q ', 0 invariant violations'; then
    echo "ci_check: chaos sweep reported invariant violations" >&2
    exit 1
fi

echo "==> scenario smoke: corpus scenarios graded by their expectations"
# Two fast corpus scenarios x two fast backends through the scenario
# DSL (retarget + run + expectation grading); the full matrix is the
# bare `scenario_sweep` (6 scenarios x 4 backends). The binary exits
# non-zero on any expectation violation; the grep pins the summary.
scenario_out=$(cargo run --release --offline -p bench --bin scenario_sweep -- --smoke)
echo "$scenario_out" | tail -n 1
if ! echo "$scenario_out" | grep -q ', 0 expectation violations'; then
    echo "ci_check: scenario sweep reported expectation violations" >&2
    exit 1
fi

echo "==> multi-process smoke: crash window SIGKILLs a real node-host"
# One backend behind loopback TCP: the supervisor spawns node-host as
# its own OS process, the crash-fault window kills it with SIGKILL, the
# supervisor restarts it, and the run must complete with the accounting
# identity intact. The binary exits non-zero if the kill or the restart
# never happened; the grep pins the identity line.
cargo build --release --offline --bin node-host
smoke_out=$(cargo run --release --offline -p bench --bin scenario_sweep -- --crash-smoke)
echo "$smoke_out" | tail -n 2
if ! echo "$smoke_out" | grep -q 'accounting identity holds'; then
    echo "ci_check: multi-process crash smoke lost the accounting identity" >&2
    exit 1
fi

echo "==> grep gate: EvalConfig is built, never constructed"
# The validating builder is the only way to make an EvalConfig; a
# struct literal would bypass every invariant it enforces. Only the
# defining module (driver.rs) may construct one.
violations=$(grep -rn 'EvalConfig {' crates src examples tests benches 2>/dev/null \
    | grep -v '^crates/hammer-core/src/driver.rs' \
    | grep -vE -- '->[[:space:]]*&?EvalConfig \{' || true)
if [ -n "$violations" ]; then
    echo "ci_check: EvalConfig struct literal outside the driver builder:" >&2
    echo "$violations" >&2
    exit 1
fi

echo "ci_check: all gates passed"
