#!/usr/bin/env sh
# Runs the `roundtrip`, `obs_overhead`, and `rpc_loopback` Criterion
# groups and the `driver_ceiling` sweep, snapshotting machine-readable
# results (one JSON object per line, appended by the harness via
# CRITERION_JSON) to BENCH_roundtrip.json, BENCH_obs_overhead.json,
# BENCH_rpc_loopback.json, and BENCH_driver_ceiling.json. Exits non-zero
# if
#   * the windowed fixed-base modexp does not hold its >=3x speedup over
#     generic square-and-multiply, or
#   * signing through a *disabled* observability context costs more than
#     5% over the plain path (the near-zero-when-off guarantee), or
#   * a loopback-TCP RPC call costs more than 50x the in-process
#     dispatch (the distributed mode's transport stays in the same
#     order of magnitude as the work it wraps), or
#   * the driver_ceiling sweep fails its accounting identity or cannot
#     sustain the million-record in-flight depth.
#
# Usage: scripts/bench_snapshot.sh [roundtrip.json] [obs_overhead.json] [driver_ceiling.json] [rpc_loopback.json]
set -eu

cd "$(dirname "$0")/.."
OUT="${1:-BENCH_roundtrip.json}"
OBS_OUT="${2:-BENCH_obs_overhead.json}"
CEILING_OUT="${3:-BENCH_driver_ceiling.json}"
RPC_OUT="${4:-BENCH_rpc_loopback.json}"
abspath() {
    case "$1" in
        /*) printf '%s\n' "$1" ;;
        *) printf '%s/%s\n' "$(pwd)" "$1" ;;
    esac
}
OUT_ABS="$(abspath "$OUT")"
OBS_OUT_ABS="$(abspath "$OBS_OUT")"

: > "$OUT_ABS"
CRITERION_JSON="$OUT_ABS" cargo bench --offline -p bench --bench roundtrip

generic=$(awk -F'"mean_ns":' '/"roundtrip\/modexp_generic"/ { split($2, a, ","); print a[1] }' "$OUT_ABS")
fixed=$(awk -F'"mean_ns":' '/"roundtrip\/modexp_fixed_base"/ { split($2, a, ","); print a[1] }' "$OUT_ABS")
if [ -z "$generic" ] || [ -z "$fixed" ]; then
    echo "bench_snapshot: modexp results missing from $OUT" >&2
    exit 1
fi

awk -v g="$generic" -v f="$fixed" 'BEGIN {
    r = g / f
    printf "fixed-base modexp speedup: %.1fx (generic %.0f ns/batch -> windowed %.0f ns/batch)\n", r, g, f
    if (r < 3.0) {
        print "bench_snapshot: speedup below the 3x floor" > "/dev/stderr"
        exit 1
    }
}'
echo "snapshot written to $OUT"

: > "$OBS_OUT_ABS"
CRITERION_JSON="$OBS_OUT_ABS" cargo bench --offline -p bench --bench obs_overhead

plain=$(awk -F'"mean_ns":' '/"obs_signing\/sign_plain"/ { split($2, a, ","); print a[1] }' "$OBS_OUT_ABS")
disabled=$(awk -F'"mean_ns":' '/"obs_signing\/sign_obs_disabled"/ { split($2, a, ","); print a[1] }' "$OBS_OUT_ABS")
if [ -z "$plain" ] || [ -z "$disabled" ]; then
    echo "bench_snapshot: obs signing results missing from $OBS_OUT" >&2
    exit 1
fi

awk -v p="$plain" -v d="$disabled" 'BEGIN {
    r = d / p
    printf "disabled-obs signing overhead: %.3fx (plain %.0f ns/batch -> obs-disabled %.0f ns/batch)\n", r, p, d
    if (r > 1.05) {
        print "bench_snapshot: disabled-obs overhead above the 5% ceiling" > "/dev/stderr"
        exit 1
    }
}'
echo "snapshot written to $OBS_OUT"

RPC_OUT_ABS="$(abspath "$RPC_OUT")"
: > "$RPC_OUT_ABS"
CRITERION_JSON="$RPC_OUT_ABS" cargo bench --offline -p bench --bench rpc_loopback

inproc=$(awk -F'"mean_ns":' '/"rpc_loopback\/inproc_call"/ { split($2, a, ","); print a[1] }' "$RPC_OUT_ABS")
tcp=$(awk -F'"mean_ns":' '/"rpc_loopback\/tcp_loopback_call"/ { split($2, a, ","); print a[1] }' "$RPC_OUT_ABS")
if [ -z "$inproc" ] || [ -z "$tcp" ]; then
    echo "bench_snapshot: rpc_loopback results missing from $RPC_OUT" >&2
    exit 1
fi

awk -v i="$inproc" -v t="$tcp" 'BEGIN {
    r = t / i
    printf "loopback-TCP RPC overhead: %.2fx (in-process %.0f ns/call -> TCP %.0f ns/call)\n", r, i, t
    if (r > 50.0) {
        print "bench_snapshot: loopback transport overhead above the 50x ceiling" > "/dev/stderr"
        exit 1
    }
}'
echo "snapshot written to $RPC_OUT"

CEILING_OUT_ABS="$(abspath "$CEILING_OUT")"
# Full sweep: 1M sustained in-flight records, single-lock (shards=1)
# baseline against the sharded tracker. The bin asserts the accounting
# identity internally and writes its JSON summary, which we adopt as the
# committed snapshot.
cargo run --release --offline -p bench --bin driver_ceiling -- \
    --inflight 1000000 --blocks 50 --block-size 10000 --shards 1,2,4,8,16
cp target/bench-results/driver_ceiling.json "$CEILING_OUT_ABS"
echo "snapshot written to $CEILING_OUT"
