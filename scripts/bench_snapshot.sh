#!/usr/bin/env sh
# Runs the `roundtrip` Criterion group and snapshots machine-readable
# results to BENCH_roundtrip.json (one JSON object per line, appended by
# the harness via CRITERION_JSON). Exits non-zero if the windowed
# fixed-base modexp does not hold its >=3x speedup over generic
# square-and-multiply.
#
# Usage: scripts/bench_snapshot.sh [output.json]
set -eu

cd "$(dirname "$0")/.."
OUT="${1:-BENCH_roundtrip.json}"
case "$OUT" in
    /*) OUT_ABS="$OUT" ;;
    *) OUT_ABS="$(pwd)/$OUT" ;;
esac

: > "$OUT_ABS"
CRITERION_JSON="$OUT_ABS" cargo bench --offline -p bench --bench roundtrip

generic=$(awk -F'"mean_ns":' '/"roundtrip\/modexp_generic"/ { split($2, a, ","); print a[1] }' "$OUT_ABS")
fixed=$(awk -F'"mean_ns":' '/"roundtrip\/modexp_fixed_base"/ { split($2, a, ","); print a[1] }' "$OUT_ABS")
if [ -z "$generic" ] || [ -z "$fixed" ]; then
    echo "bench_snapshot: modexp results missing from $OUT" >&2
    exit 1
fi

awk -v g="$generic" -v f="$fixed" 'BEGIN {
    r = g / f
    printf "fixed-base modexp speedup: %.1fx (generic %.0f ns/batch -> windowed %.0f ns/batch)\n", r, g, f
    if (r < 3.0) {
        print "bench_snapshot: speedup below the 3x floor" > "/dev/stderr"
        exit 1
    }
}'
echo "snapshot written to $OUT"
