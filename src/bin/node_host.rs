//! `node-host`: one chain backend as its own OS process.
//!
//! The multi-process deploy mode runs each system under test here, behind
//! a real TCP socket, so chaos faults can kill actual processes and
//! sockets instead of flipping in-memory flags. The supervisor in
//! `hammer-core` spawns this binary, waits for the `LISTENING <port>`
//! handshake on stdout, drives it over `hammer-net`'s length-prefixed
//! JSON-RPC transport, and SIGKILLs/restarts it to realise crash-fault
//! windows.
//!
//! ```text
//! node-host --backend ethereum-sim [--port 0] [--speedup 1000]
//!           [--epoch-offset-ms 0] [--mempool-capacity N] [--stall-sealing]
//! ```
//!
//! * `--port 0` binds an ephemeral loopback port; the actual port is
//!   announced via the handshake line.
//! * `--epoch-offset-ms` seeds the simulation clock at a given *simulated*
//!   time, so a restarted node rejoins the run's timeline instead of
//!   restarting it at zero.
//! * The process exits when stdin reaches EOF — the supervisor holds the
//!   write end, so a dead or dropping supervisor reaps its node even if it
//!   never got to send a kill. No orphans.
//!
//! Beyond the chain RPC surface (`hammer_chain::rpc_adapter::serve_sim`),
//! the host registers `install_faults`: the driver forwards its
//! [`FaultPlan`] here so blackhole/partition/latency windows act on this
//! process's own simulated network (crash windows are realised by the
//! supervisor as SIGKILL; forwarding them too keeps ingress-refusal
//! attribution during the instants before the kill lands).

use std::io::{Read, Write};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use hammer_core::deploy::{BackendOptions, BackendRegistry};
use hammer_net::{FaultPlan, LinkConfig, SimClock, SimNetwork, TcpServerConfig};
use hammer_rpc::json::Value;
use hammer_rpc::jsonrpc::RpcError;

struct Args {
    backend: String,
    port: u16,
    speedup: f64,
    epoch_offset: Duration,
    options: BackendOptions,
}

fn usage() -> ! {
    eprintln!(
        "usage: node-host --backend <name> [--port N] [--speedup X] \
         [--epoch-offset-ms N] [--mempool-capacity N] [--stall-sealing]"
    );
    std::process::exit(2)
}

fn parse_args() -> Args {
    let mut args = Args {
        backend: String::new(),
        port: 0,
        speedup: 1000.0,
        epoch_offset: Duration::ZERO,
        options: BackendOptions::default(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |flag: &str| it.next().unwrap_or_else(|| usage_missing(flag));
        match flag.as_str() {
            "--backend" => args.backend = value("--backend"),
            "--port" => args.port = parse(&value("--port"), "--port"),
            "--speedup" => args.speedup = parse(&value("--speedup"), "--speedup"),
            "--epoch-offset-ms" => {
                args.epoch_offset =
                    Duration::from_millis(parse(&value("--epoch-offset-ms"), "--epoch-offset-ms"))
            }
            "--mempool-capacity" => {
                args.options.mempool_capacity =
                    Some(parse(&value("--mempool-capacity"), "--mempool-capacity"))
            }
            "--stall-sealing" => args.options.stall_sealing = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("node-host: unknown flag {other:?}");
                usage()
            }
        }
    }
    if args.backend.is_empty() {
        eprintln!("node-host: --backend is required");
        usage()
    }
    args
}

fn usage_missing(flag: &str) -> ! {
    eprintln!("node-host: {flag} requires a value");
    usage()
}

fn parse<T: std::str::FromStr>(raw: &str, flag: &str) -> T {
    raw.parse().unwrap_or_else(|_| {
        eprintln!("node-host: invalid value {raw:?} for {flag}");
        usage()
    })
}

fn main() -> ExitCode {
    let args = parse_args();

    // Rejoin the run's simulated timeline at the supervisor-provided
    // offset: a restart must not rewind simulated time.
    let clock = SimClock::with_speedup_from(args.speedup, args.epoch_offset);
    let net = SimNetwork::new(clock.clone(), LinkConfig::cloud_100mbps());
    let deployment = match BackendRegistry::builtin().deploy_on(
        &args.backend,
        &args.options,
        clock,
        net.clone(),
    ) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("node-host: {e}");
            return ExitCode::from(2);
        }
    };

    let rpc = hammer_chain::rpc_adapter::serve_sim(Arc::clone(deployment.chain()));
    rpc.register("install_faults", move |params| {
        let plan = FaultPlan::from_value(&params).map_err(RpcError::invalid_params)?;
        net.try_install_faults(plan)
            .map_err(|e| RpcError::invalid_params(e.to_string()))?;
        Ok(Value::object([("ok", Value::from(true))]))
    });

    let addr = format!("127.0.0.1:{}", args.port);
    let server = match hammer_chain::rpc_adapter::serve_tcp(rpc, &addr, TcpServerConfig::default())
    {
        Ok(s) => s,
        Err(e) => {
            eprintln!("node-host: bind {addr}: {e}");
            return ExitCode::from(2);
        }
    };

    // Handshake: the supervisor reads this line to learn the real port.
    println!("LISTENING {}", server.local_addr().port());
    let _ = std::io::stdout().flush();

    // Serve until the supervisor closes our stdin (or dies, which closes
    // it too). The supervisor never writes, so this blocks until EOF.
    let mut sink = [0u8; 64];
    let mut stdin = std::io::stdin().lock();
    loop {
        match stdin.read(&mut sink) {
            Ok(0) => break,    // EOF: parent is done with us
            Ok(_) => continue, // stray bytes: ignore
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => break,
        }
    }

    deployment.down();
    server.shutdown_and_join();
    ExitCode::SUCCESS
}
