//! # Hammer — a general blockchain evaluation framework
//!
//! A from-scratch Rust reproduction of *"Hammer: A General Blockchain
//! Evaluation Framework"* (Wang, Zhang, Ying, Li, Yu — ICDCS 2024),
//! including every substrate the paper's evaluation depends on: four
//! simulated blockchains (Ethereum/PoW, Fabric/EOV, Neuchain/deterministic,
//! Meepo/sharded), a simulated network, a JSON-RPC interface layer, the
//! Redis/MySQL/Prometheus/Grafana-role stores, the SmallBank workload, and
//! a from-scratch neural-network stack for the workload-prediction model.
//!
//! This facade crate re-exports the whole workspace; depend on it for the
//! one-stop API or on the individual `hammer-*` crates for narrow use.
//!
//! ## Quickstart
//!
//! ```
//! use std::time::Duration;
//! use hammer::core::deploy::{ChainSpec, Deployment};
//! use hammer::core::driver::{EvalConfig, Evaluation};
//! use hammer::workload::{ControlSequence, WorkloadConfig};
//!
//! // Deploy a simulated SUT at 1000x real time, describe a workload,
//! // shape it with a control sequence, and run the evaluation.
//! let deployment = Deployment::up(ChainSpec::neuchain_default(), 1000.0);
//! let workload = WorkloadConfig { accounts: 100, ..WorkloadConfig::default() };
//! let control = ControlSequence::constant(100, 2, Duration::from_secs(1));
//! let config = EvalConfig::builder().build().unwrap();
//! let report = Evaluation::new(config)
//!     .run(&deployment, &workload, &control)
//!     .unwrap();
//! println!("{}: {:.0} TPS", report.chain, report.overall_tps);
//! ```
//!
//! ## Crate map
//!
//! | Module | Backing crate | Role |
//! |---|---|---|
//! | [`core`] | `hammer-core` | the framework: driver, Algorithm 1, signing pipeline, deployment |
//! | [`chain`] | `hammer-chain` | common chain types, SmallBank contract, generic client trait |
//! | [`ethereum`] / [`fabric`] / [`neuchain`] / [`meepo`] | chain simulators | the four systems under test |
//! | [`net`] | `hammer-net` | simulated network + scaled clock |
//! | [`obs`] | `hammer-obs` | metrics registry, lifecycle spans, journal, Prometheus exposition, ASCII dashboard |
//! | [`rpc`] | `hammer-rpc` | JSON + JSON-RPC 2.0 interface layer |
//! | [`store`] | `hammer-store` | KV store, Performance table, monitor, reports |
//! | [`workload`] | `hammer-workload` | SmallBank/YCSB generators, control sequences, traces |
//! | [`nn`] / [`predict`] | `hammer-nn`, `hammer-predict` | the §IV prediction model |
//! | [`crypto`] | `hammer-crypto` | SHA-256, HMAC, Merkle, signatures |

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use hammer_chain as chain;
pub use hammer_core as core;
pub use hammer_crypto as crypto;
pub use hammer_ethereum as ethereum;
pub use hammer_fabric as fabric;
pub use hammer_meepo as meepo;
pub use hammer_net as net;
pub use hammer_neuchain as neuchain;
pub use hammer_nn as nn;
pub use hammer_obs as obs;
pub use hammer_predict as predict;
pub use hammer_rpc as rpc;
pub use hammer_store as store;
pub use hammer_workload as workload;
