//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides `crossbeam::channel`: multi-producer **multi-consumer** FIFO
//! channels (std's mpsc receivers cannot be cloned, which the workspace
//! relies on for its worker pools). Implemented with a mutex-guarded
//! `VecDeque` and two condition variables; bounded channels apply
//! back-pressure by blocking senders at capacity.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        capacity: Option<usize>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    /// The sending half of a channel. Cloneable; the channel disconnects
    /// for receivers once every sender is dropped.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of a channel. Cloneable (multi-consumer); each
    /// message is delivered to exactly one receiver.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone;
    /// carries the unsent message.
    #[derive(Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Sender::try_send`]; carries the unsent
    /// message.
    #[derive(Clone, Copy, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The channel is at capacity.
        Full(T),
        /// All receivers are gone.
        Disconnected(T),
    }

    impl<T> fmt::Debug for TrySendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TrySendError::Full(_) => f.write_str("Full(..)"),
                TrySendError::Disconnected(_) => f.write_str("Disconnected(..)"),
            }
        }
    }

    impl<T> fmt::Display for TrySendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TrySendError::Full(_) => f.write_str("sending on a full channel"),
                TrySendError::Disconnected(_) => f.write_str("sending on a disconnected channel"),
            }
        }
    }

    impl<T> std::error::Error for TrySendError<T> {}

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// All senders are gone and the queue is drained.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived before the deadline.
        Timeout,
        /// All senders are gone and the queue is drained.
        Disconnected,
    }

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                RecvTimeoutError::Timeout => f.write_str("receive timed out"),
                RecvTimeoutError::Disconnected => f.write_str("channel disconnected"),
            }
        }
    }

    impl<T> std::error::Error for SendError<T> {}
    impl std::error::Error for RecvError {}
    impl std::error::Error for RecvTimeoutError {}

    /// Creates a channel with unlimited buffering.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_capacity(None)
    }

    /// Creates a channel buffering at most `cap` messages; sends block at
    /// capacity. `cap` of zero is treated as one (std condvars cannot
    /// express a rendezvous cheaply, and the workspace never uses zero).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_capacity(Some(cap.max(1)))
    }

    fn with_capacity<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            capacity,
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Sends a message, blocking while a bounded channel is full.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if state.receivers == 0 {
                    return Err(SendError(value));
                }
                match self.shared.capacity {
                    Some(cap) if state.queue.len() >= cap => {
                        state = self
                            .shared
                            .not_full
                            .wait(state)
                            .unwrap_or_else(|e| e.into_inner());
                    }
                    _ => break,
                }
            }
            state.queue.push_back(value);
            drop(state);
            self.shared.not_empty.notify_one();
            Ok(())
        }

        /// Attempts to send without blocking; fails when the channel is
        /// at capacity or no receiver remains.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            if state.receivers == 0 {
                return Err(TrySendError::Disconnected(value));
            }
            if let Some(cap) = self.shared.capacity {
                if state.queue.len() >= cap {
                    return Err(TrySendError::Full(value));
                }
            }
            state.queue.push_back(value);
            drop(state);
            self.shared.not_empty.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared
                .state
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            state.senders -= 1;
            let disconnected = state.senders == 0;
            drop(state);
            if disconnected {
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Receives a message, blocking until one arrives or every sender
        /// is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(value) = state.queue.pop_front() {
                    drop(state);
                    self.shared.not_full.notify_one();
                    return Ok(value);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self
                    .shared
                    .not_empty
                    .wait(state)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Receives a message, giving up after `timeout`.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(value) = state.queue.pop_front() {
                    drop(state);
                    self.shared.not_full.notify_one();
                    return Ok(value);
                }
                if state.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (next, _) = self
                    .shared
                    .not_empty
                    .wait_timeout(state, deadline - now)
                    .unwrap_or_else(|e| e.into_inner());
                state = next;
            }
        }

        /// Receives a message if one is immediately available.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(value) = state.queue.pop_front() {
                drop(state);
                self.shared.not_full.notify_one();
                return Ok(value);
            }
            if state.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Number of messages currently buffered.
        pub fn len(&self) -> usize {
            self.shared
                .state
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .queue
                .len()
        }

        /// Whether the buffer is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// A blocking iterator that yields until the channel disconnects.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared
                .state
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            state.receivers -= 1;
            let disconnected = state.receivers == 0;
            drop(state);
            if disconnected {
                self.shared.not_full.notify_all();
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    /// Borrowing blocking iterator over received messages.
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    /// Owning blocking iterator over received messages.
    pub struct IntoIter<T> {
        receiver: Receiver<T>,
    }

    impl<T> Iterator for IntoIter<T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = IntoIter<T>;
        fn into_iter(self) -> IntoIter<T> {
            IntoIter { receiver: self }
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;
        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn unbounded_fifo() {
            let (tx, rx) = unbounded();
            for i in 0..10 {
                tx.send(i).unwrap();
            }
            drop(tx);
            let got: Vec<i32> = rx.iter().collect();
            assert_eq!(got, (0..10).collect::<Vec<_>>());
        }

        #[test]
        fn bounded_applies_backpressure() {
            let (tx, rx) = bounded(2);
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            let t = std::thread::spawn(move || {
                tx.send(3).unwrap(); // must block until a recv frees a slot
                3
            });
            std::thread::sleep(Duration::from_millis(20));
            assert_eq!(rx.recv().unwrap(), 1);
            assert_eq!(t.join().unwrap(), 3);
            assert_eq!(rx.recv().unwrap(), 2);
            assert_eq!(rx.recv().unwrap(), 3);
        }

        #[test]
        fn multi_consumer_each_message_once() {
            let (tx, rx) = unbounded();
            let rx2 = rx.clone();
            let n = 1000;
            let h1 = std::thread::spawn(move || rx.iter().count());
            let h2 = std::thread::spawn(move || rx2.iter().count());
            for i in 0..n {
                tx.send(i).unwrap();
            }
            drop(tx);
            assert_eq!(h1.join().unwrap() + h2.join().unwrap(), n);
        }

        #[test]
        fn send_fails_without_receivers() {
            let (tx, rx) = unbounded();
            drop(rx);
            assert_eq!(tx.send(7), Err(SendError(7)));
        }

        #[test]
        fn recv_timeout_times_out() {
            let (tx, rx) = unbounded::<u8>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
            drop(tx);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn try_recv_states() {
            let (tx, rx) = unbounded();
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
            tx.send(5).unwrap();
            assert_eq!(rx.try_recv(), Ok(5));
            drop(tx);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }
    }
}
