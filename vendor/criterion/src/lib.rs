//! Offline stand-in for the `criterion` crate (0.5 API subset).
//!
//! The build environment has no access to crates.io, so this crate
//! implements the benchmark-harness surface the workspace's benches
//! use: `Criterion::benchmark_group`, `bench_function` /
//! `bench_with_input`, `Bencher::iter` / `iter_batched`, `Throughput`,
//! `BenchmarkId`, and the `criterion_group!` / `criterion_main!`
//! macros. There is no statistical analysis or HTML report — each
//! benchmark is calibrated, sampled, and summarised as
//! `[min mean max]` wall-clock per iteration plus derived throughput.
//!
//! Knobs (environment variables):
//! - `CRITERION_SAMPLE_MS`: target per-sample time in ms (default 10).
//! - `CRITERION_JSON`: append one JSON object per benchmark to this
//!   file (`{"id": ..., "mean_ns": ..., ...}`), so scripts can capture
//!   machine-readable results without parsing terminal output.
//!
//! Like real criterion, a `--test` argument (passed by `cargo test`
//! to `harness = false` bench targets) switches to test mode: every
//! routine runs exactly once and no timings are reported. A bare
//! (non-flag) argument acts as a substring filter on benchmark ids.

use std::fmt;
use std::io::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortises setup cost. The stand-in times each
/// routine invocation individually, so the variants behave the same;
/// they exist for API compatibility.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per routine call.
    PerIteration,
}

/// Work performed per iteration, used to derive throughput.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Throughput {
    /// Iterations process this many abstract elements.
    Elements(u64),
    /// Iterations process this many bytes.
    Bytes(u64),
}

/// A benchmark identifier: optional function name plus optional
/// parameter, rendered as `function/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    function: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// An id with both a function name and a parameter.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: Some(function.into()),
            parameter: Some(parameter.to_string()),
        }
    }

    /// An id distinguished only by its parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: None,
            parameter: Some(parameter.to_string()),
        }
    }

    fn render(&self) -> String {
        match (&self.function, &self.parameter) {
            (Some(f), Some(p)) => format!("{f}/{p}"),
            (Some(f), None) => f.clone(),
            (None, Some(p)) => p.clone(),
            (None, None) => String::new(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(function: &str) -> Self {
        BenchmarkId {
            function: Some(function.to_owned()),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(function: String) -> Self {
        BenchmarkId {
            function: Some(function),
            parameter: None,
        }
    }
}

/// The benchmark harness entry point.
pub struct Criterion {
    test_mode: bool,
    filter: Option<String>,
    sample_ms: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut test_mode = false;
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            if arg == "--test" {
                test_mode = true;
            } else if !arg.starts_with('-') {
                // First bare argument is a substring filter, as with
                // `cargo bench <filter>`. Remaining flags (--bench,
                // --save-baseline, ...) are accepted and ignored.
                filter.get_or_insert(arg);
            }
        }
        let sample_ms = std::env::var("CRITERION_SAMPLE_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(10)
            .max(1);
        Criterion {
            test_mode,
            filter,
            sample_ms,
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 20,
            throughput: None,
        }
    }

    /// Runs a standalone benchmark (no group configuration).
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id: BenchmarkId = id.into();
        let name = id.render();
        self.benchmark_group(name.clone()).run(
            BenchmarkId {
                function: None,
                parameter: None,
            },
            f,
        );
        self
    }
}

/// A set of benchmarks sharing sample-size and throughput settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples to collect per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Declares per-iteration work for throughput reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks `f` under the given id.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(id.into(), f);
        self
    }

    /// Benchmarks `f` with a borrowed input under the given id.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(id, |b| f(b, input));
        self
    }

    /// Ends the group (drop would do; kept for API compatibility).
    pub fn finish(self) {}

    fn run<F>(&mut self, id: BenchmarkId, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let rendered = id.render();
        let full_id = if rendered.is_empty() {
            self.name.clone()
        } else {
            format!("{}/{}", self.name, rendered)
        };
        if let Some(filter) = &self.criterion.filter {
            if !full_id.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            test_mode: self.criterion.test_mode,
            sample_size: self.sample_size,
            sample_time: Duration::from_millis(self.criterion.sample_ms),
            samples_ns: Vec::new(),
        };
        f(&mut bencher);
        if bencher.test_mode {
            println!("test {full_id} ... ok");
            return;
        }
        bencher.report(&full_id, self.throughput);
    }
}

/// Timing context handed to each benchmark closure.
pub struct Bencher {
    test_mode: bool,
    sample_size: usize,
    sample_time: Duration,
    /// Nanoseconds per iteration, one entry per sample.
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Times `routine`, calibrating iteration count so each sample
    /// runs long enough to be measurable.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        if self.test_mode {
            black_box(routine());
            return;
        }
        let iters = self.calibrate(|n| {
            let start = Instant::now();
            for _ in 0..n {
                black_box(routine());
            }
            start.elapsed()
        });
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            self.samples_ns
                .push(elapsed.as_nanos() as f64 / iters as f64);
        }
    }

    /// Times `routine` on fresh inputs from `setup`; setup cost is
    /// excluded from the measurement.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        if self.test_mode {
            black_box(routine(setup()));
            return;
        }
        let iters = self.calibrate(|n| {
            let mut total = Duration::ZERO;
            for _ in 0..n {
                let input = setup();
                let start = Instant::now();
                black_box(routine(input));
                total += start.elapsed();
            }
            total
        });
        for _ in 0..self.sample_size {
            let mut total = Duration::ZERO;
            for _ in 0..iters {
                let input = setup();
                let start = Instant::now();
                black_box(routine(input));
                total += start.elapsed();
            }
            self.samples_ns.push(total.as_nanos() as f64 / iters as f64);
        }
    }

    /// Doubles the iteration count until one batch reaches roughly the
    /// per-sample target; returns iterations per sample. The probe
    /// batches double as warm-up.
    fn calibrate(&self, mut probe: impl FnMut(u64) -> Duration) -> u64 {
        let mut iters = 1u64;
        loop {
            let elapsed = probe(iters);
            if elapsed >= self.sample_time || iters >= 1 << 22 {
                if elapsed.is_zero() {
                    return iters;
                }
                // Scale so one sample lands near the target time.
                let per_iter = elapsed.as_secs_f64() / iters as f64;
                let want = self.sample_time.as_secs_f64() / per_iter;
                return (want.ceil() as u64).clamp(1, 1 << 22);
            }
            iters = iters.saturating_mul(2);
        }
    }

    fn report(&self, id: &str, throughput: Option<Throughput>) {
        if self.samples_ns.is_empty() {
            return;
        }
        let min = self
            .samples_ns
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min);
        let max = self.samples_ns.iter().copied().fold(0.0f64, f64::max);
        let mean = self.samples_ns.iter().sum::<f64>() / self.samples_ns.len() as f64;
        let thrpt = throughput.map(|t| {
            let (amount, unit) = match t {
                Throughput::Elements(n) => (n as f64, "elem/s"),
                Throughput::Bytes(n) => (n as f64, "B/s"),
            };
            (amount / (mean / 1e9), unit)
        });
        print!(
            "{id:<48} time: [{} {} {}]",
            fmt_ns(min),
            fmt_ns(mean),
            fmt_ns(max)
        );
        if let Some((rate, unit)) = thrpt {
            print!("  thrpt: [{}]", fmt_rate(rate, unit));
        }
        println!();
        if let Ok(path) = std::env::var("CRITERION_JSON") {
            if !path.is_empty() {
                self.append_json(&path, id, min, mean, max, throughput);
            }
        }
    }

    fn append_json(
        &self,
        path: &str,
        id: &str,
        min: f64,
        mean: f64,
        max: f64,
        throughput: Option<Throughput>,
    ) {
        let mut line = format!(
            "{{\"id\":\"{}\",\"min_ns\":{:.1},\"mean_ns\":{:.1},\"max_ns\":{:.1},\"samples\":{}",
            id.replace('"', "\\\""),
            min,
            mean,
            max,
            self.samples_ns.len()
        );
        match throughput {
            Some(Throughput::Elements(n)) => {
                line.push_str(&format!(",\"elements\":{n}"));
            }
            Some(Throughput::Bytes(n)) => {
                line.push_str(&format!(",\"bytes\":{n}"));
            }
            None => {}
        }
        line.push('}');
        let result = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .and_then(|mut f| writeln!(f, "{line}"));
        if let Err(e) = result {
            eprintln!("criterion: could not append to {path}: {e}");
        }
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn fmt_rate(rate: f64, unit: &str) -> String {
    if rate >= 1e9 {
        format!("{:.2} G{unit}", rate / 1e9)
    } else if rate >= 1e6 {
        format!("{:.2} M{unit}", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.2} K{unit}", rate / 1e3)
    } else {
        format!("{rate:.1} {unit}")
    }
}

/// Bundles benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` from one or more benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_id_rendering() {
        assert_eq!(BenchmarkId::new("sign", 5000).render(), "sign/5000");
        assert_eq!(BenchmarkId::from_parameter(64).render(), "64");
        assert_eq!(BenchmarkId::from("plain").render(), "plain");
    }

    #[test]
    fn bencher_collects_samples() {
        let mut b = Bencher {
            test_mode: false,
            sample_size: 5,
            sample_time: Duration::from_micros(200),
            samples_ns: Vec::new(),
        };
        let mut counter = 0u64;
        b.iter(|| {
            counter = counter.wrapping_add(black_box(1));
            counter
        });
        assert_eq!(b.samples_ns.len(), 5);
        assert!(b.samples_ns.iter().all(|&ns| ns >= 0.0));
    }

    #[test]
    fn iter_batched_excludes_setup() {
        let mut b = Bencher {
            test_mode: false,
            sample_size: 3,
            sample_time: Duration::from_micros(100),
            samples_ns: Vec::new(),
        };
        b.iter_batched(
            || vec![1u64; 16],
            |v| v.iter().sum::<u64>(),
            BatchSize::LargeInput,
        );
        assert_eq!(b.samples_ns.len(), 3);
    }

    #[test]
    fn test_mode_runs_once() {
        let mut b = Bencher {
            test_mode: true,
            sample_size: 10,
            sample_time: Duration::from_millis(10),
            samples_ns: Vec::new(),
        };
        let mut runs = 0;
        b.iter(|| runs += 1);
        assert_eq!(runs, 1);
        assert!(b.samples_ns.is_empty());
    }

    #[test]
    fn format_helpers() {
        assert_eq!(fmt_ns(12.3), "12.30 ns");
        assert_eq!(fmt_ns(12_345.0), "12.35 µs");
        assert_eq!(fmt_rate(1_234_567.0, "elem/s"), "1.23 Melem/s");
    }
}
