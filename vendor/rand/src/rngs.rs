//! Named generators, mirroring `rand::rngs`.

use crate::{splitmix64, Rng, SeedableRng};

/// xoshiro256++ — the workspace's standard generator.
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // Expand the seed with splitmix64 as the xoshiro authors
        // recommend; guarantees a nonzero state.
        let mut x = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
            *slot = splitmix64(x);
        }
        StdRng { s }
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// The thread-local generator handle returned by
/// [`thread_rng`](crate::thread_rng).
#[derive(Clone, Debug)]
pub struct ThreadRng;

impl Rng for ThreadRng {
    fn next_u64(&mut self) -> u64 {
        crate::with_thread_rng(|rng| rng.next_u64())
    }
}
