//! Sequence helpers, mirroring `rand::seq`.

use crate::Rng;

/// Random operations on slices (`rand::seq::SliceRandom` subset).
pub trait SliceRandom {
    /// The element type.
    type Item;

    /// Shuffles the slice in place (Fisher–Yates).
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

    /// A uniformly random element, or `None` when empty.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            // Multiply-shift bounded draw; bias is negligible (< 2^-64·i).
            let j = ((rng.next_u64() as u128 * (i as u128 + 1)) >> 64) as usize;
            self.swap(i, j);
        }
    }

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            let i = ((rng.next_u64() as u128 * self.len() as u128) >> 64) as usize;
            self.get(i)
        }
    }
}
