//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no access to crates.io, so this crate
//! implements the parts of `rand` the workspace uses: the [`Rng`] and
//! [`SeedableRng`] traits, [`rngs::StdRng`], [`thread_rng`], and
//! [`seq::SliceRandom`]. The generator is xoshiro256++ seeded via
//! splitmix64 — fast, well distributed, and deterministic per seed
//! (quality is ample for simulation workloads; this is not a CSPRNG,
//! exactly like the real `StdRng` it should not be used for key
//! generation in production systems — the workspace's toy signature
//! scheme is explicitly educational).

use std::cell::RefCell;

pub mod rngs;
pub mod seq;

/// A source of randomness: the `rand` 0.8 `Rng` surface this workspace
/// uses (`gen`, `gen_range`, `gen_bool`, `fill_bytes`).
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }

    /// Fills a byte buffer with random data (`Rng::fill` for `[u8]`).
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }

    /// A uniformly random value of a supported primitive type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform value in `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: UniformSample,
        R: SampleRange<T>,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p));
        self.gen::<f64>() < p
    }
}

// Allow `&mut R` and trait objects where `R: Rng` is expected via
// `?Sized` bounds at call sites (the workspace uses `R: Rng + ?Sized`).
impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of a generator from seed material (`rand` 0.8 subset).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;

    /// Builds a generator from OS-provided entropy (time-derived here).
    fn from_entropy() -> Self {
        Self::seed_from_u64(entropy_seed())
    }
}

fn entropy_seed() -> u64 {
    use std::time::{SystemTime, UNIX_EPOCH};
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0x5eed);
    // Mix in a per-thread address so concurrent threads diverge.
    let stack_probe = &nanos as *const u64 as u64;
    splitmix64(nanos ^ stack_probe.rotate_left(32))
}

#[inline]
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Types with a canonical uniform distribution (`rand`'s `Standard`).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}
impl Standard for u8 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}
impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}
impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
impl Standard for f32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Scalar types that can be drawn uniformly from a range.
pub trait UniformSample: PartialOrd + Copy {
    /// Uniform draw from `[low, high)`; `high` must exceed `low`.
    fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Uniform draw from `[low, high]`.
    fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! uniform_int {
    ($($ty:ty => $wide:ty),* $(,)?) => {$(
        impl UniformSample for $ty {
            fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as $wide).wrapping_sub(low as $wide) as u64;
                // Multiply-shift rejection-free mapping (Lemire); the tiny
                // modulo bias (< 2^-64 * span) is irrelevant at simulation
                // scale.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                ((low as $wide).wrapping_add(hi as $wide)) as $ty
            }
            fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: empty range");
                if low == <$ty>::MIN && high == <$ty>::MAX {
                    return rng.next_u64() as $ty;
                }
                let span = (high as $wide).wrapping_sub(low as $wide) as u64 + 1;
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                ((low as $wide).wrapping_add(hi as $wide)) as $ty
            }
        }
    )*};
}

uniform_int!(u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
             i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64);

impl UniformSample for f64 {
    fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range: empty range");
        let unit: f64 = Standard::sample(rng);
        let v = low + unit * (high - low);
        // Floating rounding can land exactly on `high`; clamp just inside.
        if v >= high {
            low.max(high - (high - low) * f64::EPSILON)
        } else {
            v
        }
    }
    fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low <= high, "gen_range: empty range");
        let unit: f64 = Standard::sample(rng);
        low + unit * (high - low)
    }
}

impl UniformSample for f32 {
    fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        f64::sample_half_open(rng, low as f64, high as f64) as f32
    }
    fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        f64::sample_inclusive(rng, low as f64, high as f64) as f32
    }
}

/// Ranges acceptable to [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: UniformSample> SampleRange<T> for std::ops::Range<T> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: UniformSample> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

thread_local! {
    static THREAD_RNG: RefCell<rngs::StdRng> =
        RefCell::new(<rngs::StdRng as SeedableRng>::seed_from_u64(entropy_seed()));
}

/// A handle to a lazily-seeded thread-local generator.
pub fn thread_rng() -> rngs::ThreadRng {
    rngs::ThreadRng
}

fn with_thread_rng<T>(f: impl FnOnce(&mut rngs::StdRng) -> T) -> T {
    THREAD_RNG.with(|cell| f(&mut cell.borrow_mut()))
}

/// Fast standalone draw from the thread-local generator.
pub fn random<T: Standard>() -> T {
    let mut rng = thread_rng();
    T::sample(&mut rng)
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: u64 = rng.gen_range(1..=100);
            assert!((1..=100).contains(&w));
            let f: f64 = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
            let i: i64 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn gen_unit_f64() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            sum += f;
        }
        let mean = sum / 10_000.0;
        assert!((0.45..0.55).contains(&mean), "mean {mean} far from 0.5");
    }

    #[test]
    fn shuffle_permutes() {
        use seq::SliceRandom;
        let mut rng = StdRng::seed_from_u64(3);
        let mut xs: Vec<u32> = (0..50).collect();
        xs.shuffle(&mut rng);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(xs, (0..50).collect::<Vec<_>>(), "astronomically unlikely");
    }

    #[test]
    fn thread_rng_works() {
        let mut rng = thread_rng();
        let a: u64 = rng.gen();
        let b: u64 = rng.gen();
        assert_ne!(a, b, "astronomically unlikely");
    }
}
