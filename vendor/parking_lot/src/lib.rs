//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so this crate provides
//! the subset of the `parking_lot` API the workspace uses, implemented on
//! top of `std::sync`. Semantics match `parking_lot` where they differ from
//! `std`: locks do not poison (a panicked holder simply releases the lock),
//! and `lock()`/`read()`/`write()` return guards directly instead of
//! `Result`s.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::time::Duration;

/// A mutual-exclusion lock that does not poison.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar::wait` can temporarily take the std guard.
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(|e| e.into_inner())),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: Some(e.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

/// A reader-writer lock that does not poison.
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Shared-access RAII guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-access RAII guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock")
            .field("data", &&*self.read())
            .finish()
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// Result of a timed [`Condvar`] wait.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable usable with this crate's [`MutexGuard`].
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Blocks until notified, releasing the guarded lock while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard present");
        let std_guard = self
            .inner
            .wait(std_guard)
            .unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(std_guard);
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let std_guard = guard.inner.take().expect("guard present");
        let (std_guard, result) = self
            .inner
            .wait_timeout(std_guard, timeout)
            .unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(std_guard);
        WaitTimeoutResult(result.timed_out())
    }

    /// Wakes one waiting thread.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiting threads.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn condvar_wakes() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            *m.lock() = true;
            cv.notify_one();
        });
        let (m, cv) = &*pair;
        let mut done = m.lock();
        while !*done {
            let r = cv.wait_for(&mut done, Duration::from_millis(100));
            if r.timed_out() && !*done {
                continue;
            }
        }
        assert!(*done);
        h.join().unwrap();
    }

    #[test]
    fn no_poisoning() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0);
    }
}
