//! Collection strategies (`proptest::collection` subset).

use std::collections::HashSet;
use std::hash::Hash;
use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;
use crate::Strategy;

/// A collection length specification, inclusive of `min`, exclusive of
/// `max` (mirrors `proptest::collection::SizeRange` conversions).
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        if self.max <= self.min + 1 {
            self.min
        } else {
            self.min + rng.below((self.max - self.min) as u64) as usize
        }
    }
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        SizeRange {
            min: exact,
            max: exact + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            min: r.start,
            max: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty collection size range");
        SizeRange {
            min: *r.start(),
            max: *r.end() + 1,
        }
    }
}

/// A `Vec` of values from `element` with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// The result of [`vec`].
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.sample(rng);
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(self.element.generate(rng));
        }
        out
    }
}

/// A `HashSet` of values from `element`. Duplicates are redrawn with a
/// bounded retry budget, so the final size can fall short of the drawn
/// target when the element domain is small (matching real proptest's
/// behaviour of treating the size as a goal, not a guarantee).
pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Hash + Eq,
{
    HashSetStrategy {
        element,
        size: size.into(),
    }
}

/// The result of [`hash_set`].
#[derive(Clone, Debug)]
pub struct HashSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Hash + Eq,
{
    type Value = HashSet<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> HashSet<S::Value> {
        let target = self.size.sample(rng);
        let mut out = HashSet::with_capacity(target);
        let mut attempts = 0usize;
        let budget = target.saturating_mul(16).max(64);
        while out.len() < target && attempts < budget {
            out.insert(self.element.generate(rng));
            attempts += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::any;
    use crate::test_runner::TestRng;

    #[test]
    fn vec_respects_size_forms() {
        let mut rng = TestRng::seed(3);
        for _ in 0..200 {
            let ranged = vec(0u64..10, 2..5).generate(&mut rng);
            assert!((2..5).contains(&ranged.len()));
            let exact = vec(any::<bool>(), 7usize).generate(&mut rng);
            assert_eq!(exact.len(), 7);
        }
    }

    #[test]
    fn hash_set_hits_target_on_wide_domains() {
        let mut rng = TestRng::seed(4);
        for _ in 0..50 {
            let s = hash_set(any::<u64>(), 10..20).generate(&mut rng);
            assert!((10..20).contains(&s.len()), "{}", s.len());
        }
    }
}
