//! Offline stand-in for the `proptest` crate (1.x API subset).
//!
//! The build environment has no access to crates.io, so this crate
//! re-implements the pieces of proptest the workspace relies on:
//! the [`Strategy`] trait with `prop_map` / `prop_recursive`, boxed
//! cloneable strategies, `any::<T>()`, range and tuple strategies, a
//! small regex-subset string generator, [`collection::vec`] /
//! [`collection::hash_set`], and the `proptest!` / `prop_assert*` /
//! `prop_assume!` / `prop_oneof!` macros.
//!
//! Semantics differ from real proptest in two deliberate ways: inputs
//! are drawn from a deterministic per-test RNG (seeded from the test
//! name, so failures reproduce across runs), and there is **no
//! shrinking** — a failing case reports the generated inputs' seed
//! index instead of a minimised counterexample. Case count defaults to
//! 64 and can be raised with `PROPTEST_CASES`.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

pub mod collection;
pub mod strings;
pub mod test_runner;

use test_runner::TestRng;

/// A generator of test inputs (`proptest::strategy::Strategy` subset).
///
/// Unlike real proptest there is no `ValueTree`/shrinking layer — a
/// strategy simply produces one value per draw.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map {
            source: self,
            map: f,
        }
    }

    /// Builds a recursive strategy: `self` is the leaf case and
    /// `recurse` wraps a strategy for the inner level into one for the
    /// outer level. `depth` bounds the nesting; the remaining size
    /// hints are accepted for API compatibility but unused (no
    /// shrinking here means no size accounting).
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut strat = leaf.clone();
        for _ in 0..depth {
            let deeper = recurse(strat).boxed();
            strat = Union::new(vec![leaf.clone(), deeper]).boxed();
        }
        strat
    }

    /// Erases the concrete strategy type behind a cheaply cloneable
    /// handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// Object-safe indirection so [`BoxedStrategy`] can hold any strategy.
trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased, cloneable strategy (`proptest::strategy::BoxedStrategy`).
///
/// Backed by `Rc` — strategies are built and used on one thread.
pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.map)(self.source.generate(rng))
    }
}

/// Picks uniformly among alternative strategies (`prop_oneof!`).
pub struct Union<T> {
    choices: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over the given alternatives; must be non-empty.
    pub fn new(choices: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!choices.is_empty(), "prop_oneof! needs at least one arm");
        Union { choices }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.choices.len() as u64) as usize;
        self.choices[i].generate(rng)
    }
}

/// Types with a canonical strategy, for [`any`].
pub trait Arbitrary: Sized {
    /// Draws one unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The canonical strategy for `A` (`proptest::arbitrary::any`).
pub fn any<A: Arbitrary>() -> Any<A> {
    Any(PhantomData)
}

/// The result of [`any`].
pub struct Any<A>(PhantomData<A>);

impl<A> Clone for Any<A> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;

    fn generate(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}

macro_rules! arbitrary_int {
    ($($ty:ty),* $(,)?) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> Self {
                // Bias towards boundary values now and then: edge cases
                // are where integer code breaks.
                match rng.below(16) {
                    0 => <$ty>::MIN,
                    1 => <$ty>::MAX,
                    2 => 0 as $ty,
                    3 => 1 as $ty,
                    _ => rng.next_u64() as $ty,
                }
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        match rng.below(8) {
            0 => 0.0,
            1 => -0.0,
            2 => 1.0,
            3 => -1.0,
            // Wide but finite magnitudes; NaN/inf intentionally left
            // out (real proptest excludes them by default too).
            _ => {
                let mag = rng.unit_f64() * 1e12;
                if rng.next_u64() & 1 == 1 {
                    -mag
                } else {
                    mag
                }
            }
        }
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Printable ASCII most of the time; occasional multibyte.
        match rng.below(8) {
            0 => '\u{e9}',
            1 => '\u{1F600}',
            _ => (b' ' + rng.below(95) as u8) as char,
        }
    }
}

macro_rules! int_range_strategy {
    ($($ty:ty),* $(,)?) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $ty
            }
        }

        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                if lo == <$ty>::MIN && hi == <$ty>::MAX {
                    return rng.next_u64() as $ty;
                }
                let span = (hi as i128 - lo as i128) as u64 + 1;
                (lo as i128 + rng.below(span) as i128) as $ty
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let v = self.start + rng.unit_f64() * (self.end - self.start);
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        lo + rng.unit_f64() * (hi - lo)
    }
}

/// String literals act as regex-subset string strategies, e.g.
/// `"[a-z]{1,6}"`. See [`strings::generate_pattern`] for the supported
/// grammar.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        strings::generate_pattern(self, rng)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident . $idx:tt),+)),* $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy!(
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5),
);

/// Everything tests normally import (`proptest::prelude`).
pub mod prelude {
    pub use crate::test_runner::TestCaseError;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, Strategy, Union,
    };
}

/// Declares property tests. Each `fn name(pat in strategy, ...) { .. }`
/// expands to a plain test body run over many generated inputs.
#[macro_export]
macro_rules! proptest {
    () => {};
    (
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::test_runner::run(stringify!($name), |__pt_rng| {
                $(let $pat = $crate::Strategy::generate(&($strat), __pt_rng);)+
                $body
                ::core::result::Result::Ok(())
            });
        }
        $crate::proptest! { $($rest)* }
    };
}

/// Fails the current case with a message unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fails the current case unless the two expressions compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
}

/// Fails the current case if the two expressions compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{}` != `{}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

/// Discards the current case (draws a fresh one) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Picks uniformly among the listed strategies; all arms must generate
/// the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::seed(7);
        for _ in 0..1000 {
            let v = (10u64..20).generate(&mut rng);
            assert!((10..20).contains(&v));
            let f = (-2.0f64..2.0).generate(&mut rng);
            assert!((-2.0..2.0).contains(&f));
            let s = "[a-c]{2,4}".generate(&mut rng);
            assert!((2..=4).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)), "{s:?}");
        }
    }

    #[test]
    fn oneof_and_map_compose() {
        let strat = prop_oneof![Just(0u64), (1u64..10).prop_map(|v| v * 100),];
        let mut rng = TestRng::seed(11);
        let mut saw_zero = false;
        let mut saw_mapped = false;
        for _ in 0..200 {
            match strat.generate(&mut rng) {
                0 => saw_zero = true,
                v => {
                    assert!((100..1000).contains(&v) && v % 100 == 0);
                    saw_mapped = true;
                }
            }
        }
        assert!(saw_zero && saw_mapped);
    }

    #[test]
    fn recursive_strategy_terminates() {
        #[derive(Debug)]
        #[allow(dead_code)]
        enum Tree {
            Leaf(u64),
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 1,
                Tree::Node(kids) => 1 + kids.iter().map(depth).max().unwrap_or(0),
            }
        }
        let strat = (0u64..10)
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 24, 4, |inner| {
                crate::collection::vec(inner, 0..4).prop_map(Tree::Node)
            });
        let mut rng = TestRng::seed(13);
        for _ in 0..200 {
            let t = strat.generate(&mut rng);
            assert!(depth(&t) <= 4, "{t:?}");
        }
    }

    proptest! {
        #[test]
        fn macro_smoke(a in 0u64..100, b in any::<bool>(), s in "[xy]{1,3}") {
            prop_assume!(a != 99);
            prop_assert!(a < 99);
            prop_assert_eq!(s.len(), s.chars().count());
            prop_assert_ne!(s.len(), 0);
            let _ = b;
        }
    }
}
