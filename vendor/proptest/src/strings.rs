//! Regex-subset string generation.
//!
//! Real proptest compiles string literals as full regexes. This
//! stand-in supports the subset the workspace's strategies use: a
//! sequence of atoms — literal characters (with `\` escapes) or
//! character classes `[...]` containing literals and `a-z` ranges —
//! each optionally followed by a `{n}` / `{m,n}` / `?` / `*` / `+`
//! quantifier (the unbounded forms cap at 8 repeats).

use crate::test_runner::TestRng;

#[derive(Debug, Clone)]
enum Atom {
    Literal(char),
    /// Expanded alternatives of a character class.
    Class(Vec<char>),
}

#[derive(Debug, Clone)]
struct Piece {
    atom: Atom,
    min: usize,
    max: usize, // inclusive
}

/// Generates one string matching `pattern`. Panics on syntax this
/// subset does not understand, so typos fail loudly at test time.
pub fn generate_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let pieces = parse(pattern);
    let mut out = String::new();
    for piece in &pieces {
        let count = if piece.max > piece.min {
            piece.min + rng.below((piece.max - piece.min + 1) as u64) as usize
        } else {
            piece.min
        };
        for _ in 0..count {
            match &piece.atom {
                Atom::Literal(c) => out.push(*c),
                Atom::Class(choices) => out.push(choices[rng.below(choices.len() as u64) as usize]),
            }
        }
    }
    out
}

fn parse(pattern: &str) -> Vec<Piece> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut pieces = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let atom = match chars[i] {
            '[' => {
                let (class, next) = parse_class(&chars, i + 1, pattern);
                i = next;
                Atom::Class(class)
            }
            '\\' => {
                i += 1;
                let c = *chars
                    .get(i)
                    .unwrap_or_else(|| panic!("dangling escape in pattern {pattern:?}"));
                i += 1;
                Atom::Literal(unescape(c))
            }
            c => {
                i += 1;
                Atom::Literal(c)
            }
        };
        let (min, max, next) = parse_quantifier(&chars, i, pattern);
        i = next;
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

/// Parses the body of a class starting just past `[`; returns the
/// expanded alternatives and the index just past `]`.
fn parse_class(chars: &[char], mut i: usize, pattern: &str) -> (Vec<char>, usize) {
    let mut out = Vec::new();
    let mut prev: Option<char> = None;
    loop {
        let c = *chars
            .get(i)
            .unwrap_or_else(|| panic!("unterminated class in pattern {pattern:?}"));
        i += 1;
        match c {
            ']' => break,
            '\\' => {
                let e = *chars
                    .get(i)
                    .unwrap_or_else(|| panic!("dangling escape in pattern {pattern:?}"));
                i += 1;
                let lit = unescape(e);
                out.push(lit);
                prev = Some(lit);
            }
            '-' if prev.is_some() && chars.get(i).is_some_and(|&n| n != ']') => {
                // Range like `a-z`: the previous literal was already
                // pushed; extend with (prev, end].
                let start = prev.take().expect("checked above");
                let end = chars[i];
                i += 1;
                assert!(
                    start <= end,
                    "inverted class range {start:?}-{end:?} in pattern {pattern:?}",
                );
                let mut cur = start as u32 + 1;
                while cur <= end as u32 {
                    if let Some(ch) = char::from_u32(cur) {
                        out.push(ch);
                    }
                    cur += 1;
                }
            }
            c => {
                out.push(c);
                prev = Some(c);
            }
        }
    }
    assert!(!out.is_empty(), "empty class in pattern {pattern:?}");
    (out, i)
}

/// Parses an optional quantifier at `i`; returns (min, max, next index).
fn parse_quantifier(chars: &[char], i: usize, pattern: &str) -> (usize, usize, usize) {
    match chars.get(i) {
        Some('?') => (0, 1, i + 1),
        Some('*') => (0, 8, i + 1),
        Some('+') => (1, 8, i + 1),
        Some('{') => {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| panic!("unterminated quantifier in pattern {pattern:?}"))
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            let (min, max) = match body.split_once(',') {
                None => {
                    let n = parse_count(&body, pattern);
                    (n, n)
                }
                Some((lo, "")) => (parse_count(lo, pattern), parse_count(lo, pattern) + 8),
                Some((lo, hi)) => (parse_count(lo, pattern), parse_count(hi, pattern)),
            };
            assert!(min <= max, "inverted quantifier in pattern {pattern:?}");
            (min, max, close + 1)
        }
        _ => (1, 1, i),
    }
}

fn parse_count(text: &str, pattern: &str) -> usize {
    text.trim()
        .parse()
        .unwrap_or_else(|_| panic!("bad quantifier bound {text:?} in pattern {pattern:?}"))
}

fn unescape(c: char) -> char {
    match c {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        '0' => '\0',
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn simple_class_with_bounds() {
        let mut rng = TestRng::seed(1);
        for _ in 0..500 {
            let s = generate_pattern("[a-z]{1,6}", &mut rng);
            let n = s.chars().count();
            assert!((1..=6).contains(&n), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()), "{s:?}");
        }
    }

    #[test]
    fn workspace_json_pattern() {
        // The exact class hammer-rpc's arb_value uses, including escaped
        // backslash/quote, control characters, and multibyte literals.
        let pattern = "[a-zA-Z0-9 _\\\\\"\n\t\u{e9}\u{1F600}]{0,12}";
        let allowed: Vec<char> = ('a'..='z')
            .chain('A'..='Z')
            .chain('0'..='9')
            .chain([' ', '_', '\\', '"', '\n', '\t', '\u{e9}', '\u{1F600}'])
            .collect();
        let mut rng = TestRng::seed(2);
        let mut multibyte_seen = false;
        for _ in 0..2000 {
            let s = generate_pattern(pattern, &mut rng);
            assert!(s.chars().count() <= 12, "{s:?}");
            for c in s.chars() {
                assert!(allowed.contains(&c), "unexpected {c:?} in {s:?}");
                if (c as u32) > 0x7f {
                    multibyte_seen = true;
                }
            }
        }
        assert!(
            multibyte_seen,
            "class should occasionally emit multibyte chars"
        );
    }

    #[test]
    fn literals_and_quantifiers() {
        let mut rng = TestRng::seed(3);
        assert_eq!(generate_pattern("abc", &mut rng), "abc");
        let s = generate_pattern("x{3}", &mut rng);
        assert_eq!(s, "xxx");
        for _ in 0..100 {
            let s = generate_pattern("a?b+", &mut rng);
            assert!(s.ends_with('b'));
            let bs = s.trim_start_matches('a');
            assert!((1..=8).contains(&bs.len()));
        }
    }
}
