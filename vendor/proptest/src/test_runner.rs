//! Deterministic case runner and RNG for the proptest stand-in.

/// Why a single generated case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The case violated a `prop_assume!` precondition; the runner
    /// draws a replacement instead of counting it.
    Reject,
    /// A `prop_assert*!` failed with the given message.
    Fail(String),
}

impl TestCaseError {
    /// Builds the failure variant.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Reject => write!(f, "input rejected by prop_assume!"),
            TestCaseError::Fail(msg) => write!(f, "{msg}"),
        }
    }
}

/// The generator handed to strategies: xoshiro256++ seeded per case.
#[derive(Clone, Debug)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// A generator with a fully determined state.
    pub fn seed(seed: u64) -> Self {
        let mut x = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
            *slot = splitmix64(x);
        }
        TestRng { s }
    }

    /// The next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, bound)`; `bound` must be nonzero. Multiply-shift
    /// mapping — bias below 2^-64·bound, irrelevant for test inputs.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Runs `body` over many generated cases, panicking on the first
/// failure. Seeds derive from the test name, so a failure reproduces
/// on every run with the same `PROPTEST_CASES` (default 64).
pub fn run(name: &str, mut body: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>) {
    let cases: u64 = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(64)
        .max(1);
    let base = fnv1a(name.as_bytes());
    let max_rejects = cases.saturating_mul(16);
    let mut passed = 0u64;
    let mut rejected = 0u64;
    let mut case_index = 0u64;
    while passed < cases {
        let mut rng = TestRng::seed(base ^ case_index.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        match body(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject) => {
                rejected += 1;
                assert!(
                    rejected <= max_rejects,
                    "proptest '{name}': {rejected} inputs rejected by prop_assume! \
                     before reaching {cases} passing cases — strategy too narrow",
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest '{name}' failed at case index {case_index}: {msg}")
            }
        }
        case_index += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::seed(9);
        let mut b = TestRng::seed(9);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn run_executes_requested_cases() {
        let mut count = 0;
        run("counting", |_rng| {
            count += 1;
            Ok(())
        });
        assert_eq!(count, 64);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn run_panics_on_failure() {
        run("failing", |_rng| Err(TestCaseError::fail("boom")));
    }

    #[test]
    #[should_panic(expected = "strategy too narrow")]
    fn run_panics_on_reject_storm() {
        run("rejecting", |_rng| Err(TestCaseError::Reject));
    }
}
