//! Plugging a *new* blockchain into Hammer: since the chain-node runtime
//! ("node kernel") owns all the node scaffolding — threads, mempool,
//! fault-gated ingress, sealed-block accounting, gossip — a new backend
//! is ~40 lines of [`ConsensusPolicy`] plus one registry entry, not a
//! full crate. The unmodified driver then evaluates it by name, and the
//! JSON-RPC facade exposes it exactly like the four built-in systems —
//! the paper's extensibility claim in practice.
//!
//! ```text
//! cargo run --release --example custom_chain
//! ```

use std::time::Duration;

use hammer::chain::kernel::{ConsensusPolicy, Kernel, NodeKernelBuilder, Round};
use hammer::chain::rpc_adapter;
use hammer::core::deploy::{BackendOptions, BackendRegistry, Deployment};
use hammer::core::driver::{EvalConfig, Evaluation};
use hammer::core::machine::ClientMachine;
use hammer::workload::{ControlSequence, WorkloadConfig};

/// A toy chain: a centralised sequencer seals whatever is pooled every
/// few milliseconds (think "instant-finality rollup demo"). Everything
/// not written here — lifecycle, ingress gating, backpressure, obs,
/// commit events — comes from the kernel.
struct InstantPolicy;

impl ConsensusPolicy for InstantPolicy {
    fn chain_name(&self) -> &'static str {
        "instant-chain"
    }

    fn ingress_node(&self, _shard: u32) -> String {
        "sequencer".to_owned()
    }

    fn seal_wait(&self, _shard: u32) -> Duration {
        Duration::from_millis(5)
    }

    fn build_round(&self, kernel: &Kernel, shard: u32) -> Option<Round> {
        let txs = kernel.shard(shard).mempool.drain(10_000);
        if txs.is_empty() {
            return None;
        }
        let mut tx_ids = Vec::with_capacity(txs.len());
        let mut valid = Vec::with_capacity(txs.len());
        let mut state = kernel.shard(shard).state.lock();
        for tx in &txs {
            tx_ids.push(tx.id);
            valid.push(state.apply(&tx.tx.op).is_ok());
        }
        Some(Round {
            proposer: "sequencer".to_owned(),
            tx_ids,
            valid,
            gossip_to: Vec::new(),
            mempool_depth: None,
        })
    }
}

fn main() {
    // One registry entry makes the new chain selectable by name next to
    // the four built-in systems.
    let mut registry = BackendRegistry::builtin();
    registry.register("instant-chain", |_opts, clock, net| {
        let node = NodeKernelBuilder::new(clock.clone(), net.clone())
            .sink_endpoint("sequencer")
            .start(InstantPolicy);
        Deployment::from_chain(node, clock, net)
    });
    println!("registered backends: {:?}\n", registry.names());

    let deployment = registry
        .deploy("instant-chain", &BackendOptions::default(), 500.0)
        .expect("just registered");

    // The generic JSON-RPC facade works unchanged, exactly as a non-Rust
    // SUT would be driven.
    let server = rpc_adapter::serve(deployment.client());
    println!("rpc methods: {:?}\n", server.method_names());

    // The unmodified driver evaluates it like any built-in chain.
    let workload = WorkloadConfig {
        accounts: 200,
        chain_name: "instant-chain".to_owned(),
        ..WorkloadConfig::default()
    };
    let control = ControlSequence::constant(300, 3, Duration::from_secs(1));
    let config = EvalConfig::builder()
        .machine(ClientMachine::unconstrained())
        .build()
        .expect("valid config");
    let report = Evaluation::new(config)
        .run(&deployment, &workload, &control)
        .expect("evaluation");

    println!(
        "{}: {:.0} TPS, {} committed, mean latency {:.3}s",
        report.chain, report.overall_tps, report.committed, report.latency.mean_s
    );
    println!("\nA ~40-line policy + one registry entry, evaluated by the same");
    println!("generic driver that measures Ethereum/Fabric/Neuchain/Meepo.");
}
