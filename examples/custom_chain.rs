//! Plugging a *new* blockchain into Hammer: implement the generic
//! [`BlockchainClient`] interface for a toy instant-finality chain, expose
//! it over JSON-RPC, and evaluate it with the unmodified driver — the
//! paper's extensibility claim in practice.
//!
//! ```text
//! cargo run --release --example custom_chain
//! ```

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::Receiver;
use hammer::chain::client::{Architecture, BlockchainClient, ChainError, CommitEvent};
use hammer::chain::events::CommitBus;
use hammer::chain::ledger::Ledger;
use hammer::chain::rpc_adapter;
use hammer::chain::state::VersionedState;
use hammer::chain::types::{Block, SignedTransaction, TxId};
use hammer::net::SimClock;
use parking_lot::{Mutex, RwLock};

/// A toy chain: every submission becomes a single-transaction block,
/// committed instantly (think "centralised sequencer demo").
struct InstantChain {
    clock: SimClock,
    ledger: RwLock<Ledger>,
    state: Mutex<VersionedState>,
    bus: CommitBus,
    down: AtomicBool,
}

impl InstantChain {
    fn new(clock: SimClock) -> Arc<Self> {
        Arc::new(InstantChain {
            clock,
            ledger: RwLock::new(Ledger::new()),
            state: Mutex::new(VersionedState::new()),
            bus: CommitBus::new(),
            down: AtomicBool::new(false),
        })
    }
}

impl BlockchainClient for InstantChain {
    fn chain_name(&self) -> &str {
        "instant-chain"
    }

    fn architecture(&self) -> Architecture {
        Architecture::NonSharded
    }

    fn submit(&self, tx: SignedTransaction) -> Result<TxId, ChainError> {
        if self.down.load(Ordering::Relaxed) {
            return Err(ChainError::shutdown());
        }
        let id = tx.id;
        let success = self.state.lock().apply(&tx.tx.op).is_ok();
        let timestamp = self.clock.now();
        let mut ledger = self.ledger.write();
        let block = Block::new(
            ledger.height() + 1,
            ledger.tip_hash(),
            timestamp,
            "sequencer",
            0,
            vec![id],
            vec![success],
        );
        ledger.append(block).expect("sequential blocks");
        drop(ledger);
        self.bus.publish(&CommitEvent {
            tx_id: id,
            success,
            block_height: self.ledger.read().height(),
            shard: 0,
            committed_at: timestamp,
        });
        Ok(id)
    }

    fn latest_height(&self, shard: u32) -> Result<u64, ChainError> {
        if shard != 0 {
            return Err(ChainError::unknown_shard(shard));
        }
        Ok(self.ledger.read().height())
    }

    fn block_at(&self, shard: u32, height: u64) -> Result<Option<Block>, ChainError> {
        if shard != 0 {
            return Err(ChainError::unknown_shard(shard));
        }
        Ok(self.ledger.read().block_at(height).cloned())
    }

    fn pending_txs(&self) -> Result<usize, ChainError> {
        Ok(0) // instant finality: nothing is ever pending
    }

    fn subscribe_commits(&self) -> Receiver<CommitEvent> {
        self.bus.subscribe()
    }

    fn shutdown(&self) {
        self.down.store(true, Ordering::Relaxed);
    }
}

fn main() {
    let clock = SimClock::with_speedup(200.0);
    let chain = InstantChain::new(clock.clone());

    // Expose it through the generic JSON-RPC facade and talk to it purely
    // through the wire format, exactly as a non-Rust SUT would be driven.
    let server = rpc_adapter::serve(chain.clone() as Arc<dyn BlockchainClient>);
    let rpc_client =
        rpc_adapter::RpcChainClient::connect(&server, chain.clone() as Arc<dyn BlockchainClient>)
            .expect("connect");

    // Seed one account and run a few transactions over JSON-RPC.
    chain
        .state
        .lock()
        .seed_account(hammer::chain::types::Address::from_name("alice"), 1_000, 0);
    let keypair = hammer::crypto::Keypair::from_seed(1);
    let params = hammer::crypto::sig::SigParams::fast();
    for nonce in 0..25u64 {
        let tx = hammer::chain::types::Transaction {
            client_id: 0,
            server_id: 0,
            nonce,
            op: hammer::chain::smallbank::Op::DepositChecking {
                account: hammer::chain::types::Address::from_name("alice"),
                amount: 4,
            },
            chain_name: "instant-chain".to_owned(),
            contract_name: "smallbank".to_owned(),
        }
        .sign(&keypair, &params);
        rpc_client.submit(tx).expect("submit over JSON-RPC");
    }

    println!("chain      : {}", rpc_client.chain_name());
    println!("height     : {}", rpc_client.latest_height(0).unwrap());
    println!(
        "alice      : {:?}",
        chain
            .state
            .lock()
            .get(hammer::chain::types::Address::from_name("alice"))
    );
    println!("rpc methods: {:?}", server.method_names());
    println!("\n25 deposits executed through the same generic interface the");
    println!("driver uses for Ethereum/Fabric/Neuchain/Meepo.");
    let _ = Duration::ZERO;
}
