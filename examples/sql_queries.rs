//! Table II end to end: run an evaluation with the Fig. 2 status pipeline
//! enabled, then analyse the Performance table with the paper's actual
//! SQL statements.
//!
//! ```text
//! cargo run --release --example sql_queries
//! ```

use std::time::Duration;

use hammer::core::deploy::{ChainSpec, Deployment};
use hammer::core::driver::{EvalConfig, Evaluation};
use hammer::core::machine::ClientMachine;
use hammer::core::sync::StatusRecord;
use hammer::store::report::render_table;
use hammer::store::sql::query;
use hammer::store::TableStore;
use hammer::workload::{ControlSequence, WorkloadConfig};

fn main() {
    // Run a short evaluation on the Fabric simulator.
    let deployment = Deployment::up(ChainSpec::fabric_default(), 200.0);
    let workload = WorkloadConfig {
        accounts: 2_000,
        chain_name: "fabric-sim".to_owned(),
        ..WorkloadConfig::default()
    };
    let control = ControlSequence::constant(150, 8, Duration::from_secs(1));
    let config = EvalConfig::builder()
        .machine(ClientMachine::unconstrained())
        .live_sync(true) // statuses travel the KV -> table pipeline
        .drain_timeout(Duration::from_secs(60))
        .build()
        .expect("valid config");
    let report = Evaluation::new(config)
        .run(&deployment, &workload, &control)
        .expect("evaluation failed");
    println!(
        "run complete: {} committed, {} rows through the status pipeline\n",
        report.committed, report.synced_rows
    );

    // Rebuild the Performance table from the report's records (the same
    // rows the pipeline produced) and query it with Table II's SQL.
    let table = TableStore::new();
    for r in &report.records {
        table.insert(
            StatusRecord {
                tx_fingerprint: r.tx_id.fingerprint(),
                client_id: r.client_id,
                server_id: r.server_id,
                start_ns: r.start.as_nanos() as u64,
                end_ns: r.end.map(|e| e.as_nanos() as u64).unwrap_or(u64::MAX),
                outcome: if r.status == hammer::chain::types::TxStatus::Committed {
                    hammer::store::RowOutcome::Committed
                } else {
                    hammer::store::RowOutcome::Failed
                },
            }
            .into_row("fabric-sim"),
        );
    }

    // The paper's TPS statement, verbatim.
    let tps = query(
        &table,
        "SELECT COUNT(*) AS TPS FROM Performance \
         WHERE STATUS = '1' AND TIMESTAMPDIFF(SECOND, start_time, end_time) <= 1",
    )
    .unwrap();
    println!("Table II TPS statement:");
    println!(
        "{}",
        render_table(
            &tps.columns.iter().map(String::as_str).collect::<Vec<_>>(),
            &tps.rows,
        )
    );

    // The paper's latency statement (first rows shown).
    let latency = query(
        &table,
        "SELECT tx_id, start_time, end_time, \
         TIMESTAMPDIFF(MILLISECOND, start_time, end_time) AS Latency \
         FROM Performance",
    )
    .unwrap();
    println!(
        "Table II latency statement (first 8 of {} rows):",
        latency.rows.len()
    );
    println!(
        "{}",
        render_table(
            &latency
                .columns
                .iter()
                .map(String::as_str)
                .collect::<Vec<_>>(),
            &latency.rows.iter().take(8).cloned().collect::<Vec<_>>(),
        )
    );

    // A Grafana-style ad-hoc drill-down.
    let slow = query(
        &table,
        "SELECT COUNT(*) AS slow_txs FROM Performance \
         WHERE STATUS = '1' AND TIMESTAMPDIFF(MILLISECOND, start_time, end_time) > 1500",
    )
    .unwrap();
    println!("ad-hoc: committed txs slower than 1.5s:");
    println!(
        "{}",
        render_table(
            &slow.columns.iter().map(String::as_str).collect::<Vec<_>>(),
            &slow.rows,
        )
    );
}
