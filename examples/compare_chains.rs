//! Compare all four simulated blockchains under one identical SmallBank
//! workload — the miniature version of the paper's Fig. 6.
//!
//! ```text
//! cargo run --release --example compare_chains
//! ```

use std::time::Duration;

use hammer::core::deploy::{ChainSpec, Deployment};
use hammer::core::driver::{EvalConfig, Evaluation};
use hammer::core::machine::ClientMachine;
use hammer::store::report::render_table;
use hammer::workload::{ControlSequence, WorkloadConfig};

fn main() {
    // A light common load every chain can absorb, so the comparison shows
    // latency differences rather than saturation behaviour. (For peak
    // numbers, see `cargo run --release -p bench --bin fig6_chains`.)
    let rate = 50u32;
    let seconds = 10usize;

    let mut rows = Vec::new();
    for spec in ChainSpec::all_defaults() {
        let name = spec.name().to_owned();
        eprintln!("evaluating {name}...");
        let deployment = Deployment::up(spec, 200.0);
        let workload = WorkloadConfig {
            accounts: 2_000,
            clients: 2,
            threads_per_client: 2,
            chain_name: name.clone(),
            ..WorkloadConfig::default()
        };
        let control = ControlSequence::constant(rate, seconds, Duration::from_secs(1));
        let config = EvalConfig::builder()
            .machine(ClientMachine::unconstrained())
            .drain_timeout(Duration::from_secs(120))
            .build()
            .expect("valid config");
        let report = Evaluation::new(config)
            .run(&deployment, &workload, &control)
            .expect("evaluation failed");
        rows.push(vec![
            name,
            format!("{:.1}", report.overall_tps),
            format!("{:.3}", report.latency.mean_s),
            format!("{:.3}", report.latency.p95_s),
            report.committed.to_string(),
            report.failed.to_string(),
            report.timed_out.to_string(),
        ]);
    }

    println!(
        "\n{}",
        render_table(
            &[
                "chain",
                "tps",
                "mean_lat_s",
                "p95_lat_s",
                "committed",
                "failed",
                "timed_out"
            ],
            &rows
        )
    );
    println!("Same driver, same workload, same control sequence — four very");
    println!("different consensus architectures (the generic-interface claim).");
}
