//! The paper's §IV flow end to end: learn an application's temporal
//! character, extend it into a longer control sequence, and drive an
//! evaluation with the predicted load shape.
//!
//! ```text
//! cargo run --release --example workload_prediction
//! ```

use std::time::Duration;

use hammer::core::deploy::{ChainSpec, Deployment};
use hammer::core::driver::{EvalConfig, Evaluation};
use hammer::core::machine::ClientMachine;
use hammer::predict::generate::generate_denormalized;
use hammer::predict::models::HammerModel;
use hammer::predict::{Dataset, SeriesModel, TrainConfig};
use hammer::store::report::render_series;
use hammer::workload::traces::{TraceKind, TraceSpec};
use hammer::workload::{ControlSequence, WorkloadConfig};

fn main() {
    // 1. The "real" workload: 300 hours of NFT transaction counts.
    let series = TraceSpec::paper(TraceKind::Nft, 1).generate();
    println!(
        "{}",
        render_series("real NFT trace (hourly tx counts)", &series, 8)
    );

    // 2. Train the TCN+BiGRU+attention model on it.
    let config = TrainConfig {
        epochs: 40, // quick demo; the Table III bench uses the full budget
        ..TrainConfig::default()
    };
    let dataset = Dataset::new(&series, config.window, 0.8);
    let mut model = HammerModel::new(&config);
    eprintln!("training (a minute or so)...");
    let train_loss = model.fit(&dataset.train, &config);
    println!("training converged at MAE {train_loss:.4} (normalised scale)\n");

    // 3. Extend: generate 48 future hours the real trace does not have.
    let seed_window: Vec<f64> = dataset.train[dataset.train.len() - config.window..].to_vec();
    let generated = generate_denormalized(&mut model, &seed_window, 48, &dataset.normalizer);
    println!(
        "{}",
        render_series("generated continuation (48 h)", &generated, 8)
    );

    // 4. Turn the generated shape into a control sequence: same temporal
    //    character, rescaled to a 20 000-transaction test, one simulated
    //    second per slice.
    let control = ControlSequence::from_trace(&generated, 20_000, Duration::from_secs(1));
    println!(
        "control sequence: {} slices, total {} txs, peak {} tx/s, burstiness {:.2}\n",
        control.len(),
        control.total(),
        control.peak(),
        control.burstiness()
    );

    // 5. Evaluate Neuchain under the predicted load shape.
    let deployment = Deployment::up(ChainSpec::neuchain_default(), 200.0);
    let workload = WorkloadConfig {
        accounts: 2_000,
        chain_name: "neuchain-sim".to_owned(),
        ..WorkloadConfig::default()
    };
    let eval_config = EvalConfig::builder()
        .machine(ClientMachine::unconstrained())
        .drain_timeout(Duration::from_secs(120))
        .build()
        .expect("valid config");
    let report = Evaluation::new(eval_config)
        .run(&deployment, &workload, &control)
        .expect("evaluation failed");
    println!(
        "{}: {} committed, {:.1} TPS, mean latency {:.3}s under the learned load shape",
        report.chain, report.committed, report.overall_tps, report.latency.mean_s
    );
    println!(
        "{}",
        render_series(
            "measured committed tx per simulated second",
            &report
                .tps_series
                .iter()
                .map(|v| *v as f64)
                .collect::<Vec<_>>(),
            8
        )
    );
}
