//! Quickstart: deploy a simulated blockchain, run a SmallBank evaluation,
//! and print the report — the whole Fig. 3 flow in ~30 lines.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use std::time::Duration;

use hammer::core::deploy::{ChainSpec, Deployment};
use hammer::core::driver::{EvalConfig, Evaluation};
use hammer::workload::{ControlSequence, WorkloadConfig};

fn main() {
    // 1. Preparation: bring up the SUT (Ansible role). The clock runs
    //    200x faster than wall time; all configured delays keep their
    //    ratios.
    let deployment = Deployment::up(ChainSpec::neuchain_default(), 200.0);

    // 2. Describe the workload: SmallBank over 1 000 accounts, submitted
    //    by 2 clients x 2 threads (the paper's sweet spot).
    let workload = WorkloadConfig {
        accounts: 1_000,
        clients: 2,
        threads_per_client: 2,
        chain_name: "neuchain-sim".to_owned(),
        ..WorkloadConfig::default()
    };

    // 3. Shape the load with a control sequence: 10 simulated seconds
    //    ramping from 100 to 600 transactions per second.
    let control = ControlSequence::ramp(100, 600, 10, Duration::from_secs(1));

    // 4. Execute and report.
    let config = EvalConfig::builder().build().expect("valid config");
    let report = Evaluation::new(config)
        .run(&deployment, &workload, &control)
        .expect("evaluation failed");

    println!("chain        : {}", report.chain);
    println!("submitted    : {}", report.submitted);
    println!("committed    : {}", report.committed);
    println!("failed       : {}", report.failed);
    println!("timed out    : {}", report.timed_out);
    println!("throughput   : {:.1} TPS", report.overall_tps);
    println!(
        "latency      : mean {:.3}s / p95 {:.3}s / p99 {:.3}s",
        report.latency.mean_s, report.latency.p95_s, report.latency.p99_s
    );
    println!("sim duration : {:.1}s", report.sim_duration.as_secs_f64());
    println!("wall time    : {:.2}s", report.wall_time.as_secs_f64());
    println!("\nper-second committed series: {:?}", report.tps_series);
}
