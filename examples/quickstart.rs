//! Quickstart: deploy a simulated blockchain, run a SmallBank evaluation,
//! and print the report plus the observability dashboard — the whole
//! Fig. 3 flow in ~40 lines.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use std::time::Duration;

use hammer::core::deploy::{ChainSpec, Deployment};
use hammer::core::driver::{EvalConfig, Evaluation};
use hammer::net::{LinkConfig, SimClock, SimNetwork};
use hammer::obs::{render_dashboard, Obs};
use hammer::workload::{ControlSequence, WorkloadConfig};

fn main() {
    // 1. Preparation: bring up the SUT (Ansible role). The clock runs
    //    200x faster than wall time; all configured delays keep their
    //    ratios. Installing an `Obs` bundle on the network before the
    //    deployment turns on metrics, lifecycle spans, and the journal
    //    for every component that touches the network.
    let clock = SimClock::with_speedup(200.0);
    let net = SimNetwork::new(clock.clone(), LinkConfig::cloud_100mbps());
    net.install_obs(Obs::new());
    let deployment = Deployment::up_on(ChainSpec::neuchain_default(), clock, net);

    // 2. Describe the workload: SmallBank over 1 000 accounts, submitted
    //    by 2 clients x 2 threads (the paper's sweet spot).
    let workload = WorkloadConfig {
        accounts: 1_000,
        clients: 2,
        threads_per_client: 2,
        chain_name: "neuchain-sim".to_owned(),
        ..WorkloadConfig::default()
    };

    // 3. Shape the load with a control sequence: 10 simulated seconds
    //    ramping from 100 to 600 transactions per second.
    let control = ControlSequence::ramp(100, 600, 10, Duration::from_secs(1));

    // 4. Execute and report.
    let config = EvalConfig::builder().build().expect("valid config");
    let report = Evaluation::new(config)
        .run(&deployment, &workload, &control)
        .expect("evaluation failed");

    println!("chain        : {}", report.chain);
    println!("submitted    : {}", report.submitted);
    println!("committed    : {}", report.committed);
    println!("failed       : {}", report.failed);
    println!("timed out    : {}", report.timed_out);
    println!("throughput   : {:.1} TPS", report.overall_tps);
    println!(
        "latency      : mean {:.3}s / p95 {:.3}s / p99 {:.3}s",
        report.latency.mean_s, report.latency.p95_s, report.latency.p99_s
    );
    println!("sim duration : {:.1}s", report.sim_duration.as_secs_f64());
    println!("wall time    : {:.2}s", report.wall_time.as_secs_f64());

    // 5. The observability dashboard: TPS sparkline, per-stage latency
    //    quantiles, resource gauges, and the journal tail. The same data
    //    renders as Prometheus text via `obs.render_prometheus()`.
    let obs = deployment.net().obs();
    let series: Vec<f64> = report.tps_series.iter().map(|&n| n as f64).collect();
    println!("\n{}", render_dashboard(&obs, &series));
}
