//! Run shipped evaluation scenarios by name — the scenario corpus is
//! data (`scenarios/*.json`), and this example is the whole harness a
//! user needs around it.
//!
//! ```text
//! cargo run --release --example scenarios                  # list the corpus
//! cargo run --release --example scenarios -- partition-then-heal
//! cargo run --release --example scenarios -- all           # run everything
//! ```

use hammer::core::scenario::corpus;

fn run_one(name: &str) -> usize {
    let scenario = match corpus::load(name) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot load {name:?}: {e}");
            std::process::exit(2);
        }
    };
    println!("== {} on {} ==", scenario.name(), scenario.backend());
    println!("   {}", scenario.description());
    let verdict = match scenario.run() {
        Ok(v) => v,
        Err(e) => {
            eprintln!("run failed: {e}");
            std::process::exit(1);
        }
    };
    for check in &verdict.checks {
        println!(
            "   [{}] {}: {}",
            if check.passed { "pass" } else { "FAIL" },
            check.name,
            check.detail
        );
    }
    println!(
        "   {} committed / {} submitted, verdict: {}\n",
        verdict.report.committed,
        verdict.report.submitted,
        if verdict.passed() { "PASS" } else { "FAIL" }
    );
    verdict.violations().len()
}

fn main() {
    let arg = std::env::args().nth(1);
    let violations = match arg.as_deref() {
        None => {
            println!("shipped scenarios (pass a name, or `all`):\n");
            for name in corpus::names() {
                let scenario = corpus::load(name).expect("corpus scenario must parse");
                println!("  {name} [{}]", scenario.backend());
                println!("      {}", scenario.description());
            }
            return;
        }
        Some("all") => corpus::names().into_iter().map(run_one).sum::<usize>(),
        Some(name) => run_one(name),
    };
    if violations > 0 {
        std::process::exit(1);
    }
}
